//! Process-wide, sharded evaluation-plan cache.
//!
//! PR 2 memoized [`EvalPlan`]s per [`crate::Workspace`] (cap-8 LRU), which
//! left two hot-path taxes on the table:
//!
//! * **Cross-workspace rebuilds.** Every solver, batch worker and plan
//!   phase that constructed its own workspace re-planned shapes the
//!   process had already planned — and a workspace touching more than 8
//!   shapes (nine round-robined strategies, an MWEM sweep) evicted and
//!   rebuilt plans on *every* call.
//! * **Per-round spine rebuilds.** MWEM-style loops rebuild a stacked
//!   `Union` each round that shares all-but-one block with the previous
//!   round, but a whole-tree cache can only miss on the new spine and
//!   re-walk every block.
//!
//! This module replaces that with one process-wide cache keyed purely by
//! the structural shape fingerprint ([`crate::plan::fingerprint`]), and
//! [`crate::plan`] fingerprints **per child** on `Union` blocks and
//! `Product`-chain factors, so a rebuilt spine reassembles from cached
//! block plans in `O(blocks)` without re-walking any shared subtree.
//!
//! Design notes:
//!
//! * **Entries never go stale** — a plan is a pure function of the shape
//!   that keys it (see the soundness argument on `fingerprint`), so there
//!   is no invalidation protocol, only an optional [`plan_cache_clear`]
//!   for benchmarks that want to price re-planning.
//! * **Sharding.** The map is split into [`PLAN_CACHE_SHARDS`] independent
//!   `Mutex` shards selected by fingerprint bits, so concurrent
//!   workspaces rarely contend; solver inner loops never reach the shards
//!   at all thanks to the workspace-local single-entry fast path.
//! * **Exactly-once builds.** Each map slot holds a `OnceLock`: racing
//!   threads that miss on the same shape agree on one canonical
//!   `Arc<EvalPlan>` and only one of them runs the planning pass (the
//!   shard lock is *not* held while building, so recursive child builds
//!   cannot deadlock).
//! * **Byte-bounded residency.** Each shard runs a **byte-weighted
//!   second-chance** (clock) eviction: every entry carries its plan's
//!   direct byte footprint (accounted once, after the build completes)
//!   and a referenced bit set on every hit; when a shard's accounted
//!   bytes exceed its share of [`plan_cache_max_bytes`] — or its entry
//!   count reaches the `SHARD_CAP` backstop — the clock hand gives each
//!   referenced entry a second chance (clearing the bit) and evicts cold
//!   entries until the shard is back under ¾ of its bound. Hot entries —
//!   the shared block plans an MWEM loop re-stacks every round — survive
//!   indefinitely, while dead spines age out, so a long spine-stacking
//!   run holds bounded plan memory with **no rebuild storm** (gated by
//!   `tests/plan_eviction.rs`). Eviction only costs transient rebuilds,
//!   never correctness.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::plan::EvalPlan;
use crate::Matrix;

/// Number of independent cache shards (power of two). Public so the
/// per-shard byte breakdown in [`PlanCacheStats`] has a stable, nameable
/// dimension.
pub const PLAN_CACHE_SHARDS: usize = 16;

/// Internal alias for the shard count.
const SHARDS: usize = PLAN_CACHE_SHARDS;

/// Resident shapes per shard before the clock sweep runs regardless of
/// bytes — a backstop against byte-accounting blind spots (in-flight
/// builds weigh 0 until accounted).
const SHARD_CAP: usize = 4096;

/// Default process-wide byte bound across all shards (see
/// [`plan_cache_set_max_bytes`]). Generous for realistic plan mixes —
/// a leaf plan is ~100 bytes, a 1000-block spine ~16 KiB — while still
/// bounding a pathological spine-stacking run to a fixed footprint.
const DEFAULT_MAX_BYTES: usize = 64 << 20;

/// Sweeps drain a shard to this fraction of its bound (hysteresis, so
/// each insert near the bound does not trigger its own sweep).
const SWEEP_TARGET_NUM: usize = 3;
const SWEEP_TARGET_DEN: usize = 4;

type Slot = Arc<OnceLock<Arc<EvalPlan>>>;

/// One resident shape: its build-once slot, its second-chance bit and
/// its accounted byte weight (0 while the build is in flight).
struct Entry {
    slot: Slot,
    referenced: bool,
    bytes: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    /// Clock order for the second-chance hand: keys in insertion order.
    /// May hold stale keys (evicted, or re-inserted and queued twice);
    /// the sweep skips keys that no longer resolve.
    clock: VecDeque<u64>,
    /// Sum of accounted entry weights.
    bytes: usize,
}

static CACHE: OnceLock<Vec<Mutex<Shard>>> = OnceLock::new();

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static SHARED_SUBPLANS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static MAX_BYTES: AtomicUsize = AtomicUsize::new(DEFAULT_MAX_BYTES);

fn shards() -> &'static [Mutex<Shard>] {
    CACHE.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect())
}

fn shard(fp: u64) -> &'static Mutex<Shard> {
    // The fingerprint is an FNV-1a product whose low bits are well mixed.
    &shards()[(fp as usize) & (SHARDS - 1)]
}

fn lock(m: &'static Mutex<Shard>) -> std::sync::MutexGuard<'static, Shard> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-shard share of the process-wide byte bound.
fn shard_max_bytes() -> usize {
    (MAX_BYTES.load(Ordering::Relaxed) / SHARDS).max(1)
}

/// The process-wide plan-cache byte bound currently in force.
pub fn plan_cache_max_bytes() -> usize {
    MAX_BYTES.load(Ordering::Relaxed)
}

/// Sets the process-wide plan-cache byte bound (split evenly across the
/// [`PLAN_CACHE_SHARDS`] shards) and returns the previous bound. Purely a
/// memory/perf dial: eviction can only cost transient rebuilds, never
/// correctness. Bounds below a few plan footprints effectively disable
/// caching; the default (64 MiB) is generous for realistic plan mixes.
pub fn plan_cache_set_max_bytes(bytes: usize) -> usize {
    MAX_BYTES.swap(bytes.max(1), Ordering::Relaxed)
}

/// Second-chance sweep: advance the clock hand until the shard is under
/// both targets (or every surviving entry has used its second chance —
/// the pass bound keeps in-flight-heavy shards from spinning).
fn sweep(shard: &mut Shard, byte_target: usize, entry_target: usize) {
    let mut passes = shard.clock.len().saturating_mul(2);
    while (shard.bytes > byte_target || shard.map.len() > entry_target) && passes > 0 {
        passes -= 1;
        let Some(fp) = shard.clock.pop_front() else {
            break;
        };
        match shard.map.get_mut(&fp) {
            // Stale hand position: the key was evicted earlier (or is a
            // duplicate from an evict/re-insert cycle).
            None => continue,
            // Recently used: second chance.
            Some(e) if e.referenced => {
                e.referenced = false;
                shard.clock.push_back(fp);
            }
            // Build in flight (weight not yet accounted): keep.
            Some(e) if e.bytes == 0 => shard.clock.push_back(fp),
            // Cold: evict.
            Some(_) => {
                // xlint: allow(panic-policy, reason = "the match arm above just resolved this key and the shard lock is held continuously, so the entry cannot vanish")
                let e = shard.map.remove(&fp).expect("entry just resolved");
                shard.bytes -= e.bytes;
                EVICTIONS.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The cached plan for `m` under fingerprint `fp`, building it exactly
/// once process-wide on a miss. Returns `(plan, built)` where `built` is
/// true iff *this* call ran the planning pass.
pub(crate) fn get_or_build(m: &Matrix, fp: u64) -> (Arc<EvalPlan>, bool) {
    let slot: Slot = {
        let mut sh = lock(shard(fp));
        if let Some(e) = sh.map.get_mut(&fp) {
            e.referenced = true;
            Arc::clone(&e.slot)
        } else {
            let bound = shard_max_bytes();
            if sh.bytes > bound || sh.map.len() >= SHARD_CAP {
                sweep(
                    &mut sh,
                    bound * SWEEP_TARGET_NUM / SWEEP_TARGET_DEN,
                    SHARD_CAP * SWEEP_TARGET_NUM / SWEEP_TARGET_DEN,
                );
            }
            let slot = Slot::default();
            sh.map.insert(
                fp,
                Entry {
                    slot: Arc::clone(&slot),
                    referenced: false,
                    bytes: 0,
                },
            );
            sh.clock.push_back(fp);
            slot
        }
    };
    let mut built = false;
    let plan = slot.get_or_init(|| {
        built = true;
        Arc::new(EvalPlan::build_new(m, fp))
    });
    if built {
        MISSES.fetch_add(1, Ordering::Relaxed);
        // Account the entry's weight now that the plan exists. The entry
        // may have been swept while we were building (or replaced by an
        // evict/re-insert cycle): account only our own slot, once.
        let mut sh = lock(shard(fp));
        if let Some(e) = sh.map.get_mut(&fp) {
            if e.bytes == 0 && Arc::ptr_eq(&e.slot, &slot) {
                e.bytes = plan.direct_bytes();
                sh.bytes += e.bytes;
            }
        }
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    (Arc::clone(plan), built)
}

/// Records that a `Union`-block / `Product`-factor lookup was served from
/// the cache (the per-child sharing the MWEM round loop relies on).
pub(crate) fn note_shared_subplan() {
    SHARED_SUBPLANS.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the process-wide plan-cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache without building (includes child
    /// lookups during spine assembly).
    pub hits: u64,
    /// Lookups that had to run the planning pass.
    pub misses: u64,
    /// The subset of `hits` that were `Union`-block or `Product`-factor
    /// lookups during spine assembly — each one is a whole subtree walk
    /// the per-child sharing avoided.
    pub shared_subplans: u64,
    /// Entries removed by the byte-weighted second-chance sweeps.
    pub evictions: u64,
    /// Shapes currently resident across all shards.
    pub entries: usize,
    /// Approximate heap bytes of all resident plans (each entry's
    /// *direct* footprint; `Arc`-shared sub-plans — union blocks, chain
    /// factors — count at pointer size in their parents and in full only
    /// at their own entry, so shared subtrees are not double counted).
    /// The figure the byte-weighted eviction policy budgets against.
    pub resident_bytes: usize,
    /// `resident_bytes` broken down per shard — the granularity at which
    /// the second-chance sweep operates.
    pub shard_bytes: [usize; PLAN_CACHE_SHARDS],
}

/// Current process-wide plan-cache counters. Counters are cumulative for
/// the process; tests and benchmarks diff two snapshots. Byte figures
/// walk the resident entries (bounded per shard by the byte-weighted
/// eviction), so this is a stats call, not a hot-path probe.
pub fn plan_cache_stats() -> PlanCacheStats {
    let mut entries = 0;
    let mut shard_bytes = [0usize; PLAN_CACHE_SHARDS];
    for (bytes, s) in shard_bytes.iter_mut().zip(shards()) {
        let map = lock(s);
        entries += map.map.len();
        *bytes = map
            .map
            .values()
            .filter_map(|e| e.slot.get())
            .map(|plan| plan.direct_bytes())
            .sum();
    }
    PlanCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        shared_subplans: SHARED_SUBPLANS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        entries,
        resident_bytes: shard_bytes.iter().sum(),
        shard_bytes,
    }
}

/// Drops every cached plan process-wide. Never needed for correctness
/// (entries cannot go stale); benchmarks call this to price what the
/// cache removes. Workspaces holding a fast-path `Arc` keep evaluating
/// their plan unaffected — pair with [`crate::Workspace::invalidate_plans`]
/// to force a full re-plan.
pub fn plan_cache_clear() {
    for s in shards() {
        let mut sh = lock(s);
        sh.map.clear();
        sh.clock.clear();
        sh.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::fingerprint;

    // Shapes here use dimensions unique to this file so counter assertions
    // are immune to sibling tests sharing the process-wide cache.

    /// Tests that clear the cache, change the byte bound or assert on
    /// global residency must not interleave (the test harness runs them
    /// on concurrent threads).
    static RESIDENCY: Mutex<()> = Mutex::new(());

    fn residency_lock() -> std::sync::MutexGuard<'static, ()> {
        RESIDENCY.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn exactly_one_build_per_shape_across_threads() {
        let _serial = residency_lock();
        let m = Matrix::vstack(vec![Matrix::prefix(377), Matrix::wavelet(377)]);
        let fp = fingerprint(&m);
        let mut plans: Vec<Option<(Arc<EvalPlan>, bool)>> = vec![None; 4];
        crate::pool::scope(|s| {
            for slot in plans.iter_mut() {
                let m = m.clone();
                s.spawn(move || *slot = Some(get_or_build(&m, fingerprint(&m))));
            }
        });
        let plans: Vec<(Arc<EvalPlan>, bool)> =
            plans.into_iter().map(|p| p.expect("job ran")).collect();
        let builds = plans.iter().filter(|(_, b)| *b).count();
        assert_eq!(builds, 1, "racing lookups must agree on one build");
        for (p, _) in &plans {
            assert!(Arc::ptr_eq(p, &plans[0].0), "all workers share one plan");
        }
        // And a later lookup is a hit on the same canonical Arc.
        let (again, built) = get_or_build(&m, fp);
        assert!(!built);
        assert!(Arc::ptr_eq(&again, &plans[0].0));
    }

    #[test]
    fn clear_forces_a_rebuild() {
        let _serial = residency_lock();
        let m = Matrix::prefix(5419);
        let (_, built_first) = get_or_build(&m, fingerprint(&m));
        assert!(built_first);
        let (_, built_again) = get_or_build(&m, fingerprint(&m));
        assert!(!built_again);
        plan_cache_clear();
        let (_, built_after_clear) = get_or_build(&m, fingerprint(&m));
        assert!(built_after_clear, "clear must drop residency");
    }

    #[test]
    fn stats_track_entries() {
        let _serial = residency_lock();
        let before = plan_cache_stats();
        let m = Matrix::suffix(7451);
        let _ = get_or_build(&m, fingerprint(&m));
        let after = plan_cache_stats();
        assert!(after.misses > before.misses);
        assert!(after.entries >= 1);
    }

    #[test]
    fn stats_weigh_resident_bytes_per_shard() {
        // A leaf plan weighs a fixed struct size; a union spine adds
        // per-block records, so its entry must weigh more — the signal the
        // byte-weighted eviction policy keys on. Dimensions unique to this
        // test keep the assertions immune to cache sharing, and the
        // residency lock keeps `clear_forces_a_rebuild` from evicting the
        // entries between the builds and the stats snapshot.
        let _serial = residency_lock();
        let leaf = Matrix::prefix(9973);
        let (leaf_plan, _) = get_or_build(&leaf, fingerprint(&leaf));
        let spine = Matrix::vstack(vec![Matrix::prefix(4201); 39]);
        let (spine_plan, _) = get_or_build(&spine, fingerprint(&spine));
        assert!(
            spine_plan.direct_bytes() > leaf_plan.direct_bytes(),
            "39-block spine ({}) must outweigh a leaf ({})",
            spine_plan.direct_bytes(),
            leaf_plan.direct_bytes()
        );

        let stats = plan_cache_stats();
        assert!(
            stats.resident_bytes >= leaf_plan.direct_bytes() + spine_plan.direct_bytes(),
            "resident bytes must cover at least the entries just built"
        );
        assert_eq!(
            stats.resident_bytes,
            stats.shard_bytes.iter().sum::<usize>(),
            "total must equal the per-shard breakdown"
        );
    }

    /// Unit-level clock semantics, driven on a synthetic shard so no
    /// process-global state (and no sibling test) is involved: cold
    /// entries are evicted, referenced entries survive with their bit
    /// spent, in-flight builds (weight 0) are never evicted, and the
    /// byte accounting tracks the removals. (The end-to-end behavior —
    /// a long spine-stacking run under a configured bound with zero
    /// re-planning — is pinned in `tests/plan_eviction.rs`, which owns
    /// its process.)
    #[test]
    fn sweep_evicts_cold_keeps_hot_and_in_flight() {
        let mut shard = Shard::default();
        let mut insert = |fp: u64, referenced: bool, bytes: usize| {
            shard.map.insert(
                fp,
                Entry {
                    slot: Slot::default(),
                    referenced,
                    bytes,
                },
            );
            shard.clock.push_back(fp);
            shard.bytes += bytes;
        };
        insert(1, true, 1000); // hot
        insert(2, false, 1000); // cold
        insert(3, false, 0); // build in flight
        insert(4, false, 1000); // cold
        insert(5, true, 1000); // hot

        sweep(&mut shard, 2000, SHARD_CAP);
        assert!(!shard.map.contains_key(&2), "cold entry 2 must be evicted");
        assert!(!shard.map.contains_key(&4), "cold entry 4 must be evicted");
        assert!(shard.map.contains_key(&3), "in-flight entry must survive");
        assert!(shard.map.contains_key(&1), "hot entry 1 must survive");
        assert!(shard.map.contains_key(&5), "hot entry 5 must survive");
        // The hand stops as soon as the shard is under target: entry 1's
        // second chance was spent on the way, entry 5 was never reached.
        assert!(
            !shard.map[&1].referenced,
            "visited hot entry spends its bit"
        );
        assert!(shard.map[&5].referenced, "unvisited entry keeps its bit");
        assert_eq!(shard.bytes, 2000, "accounting must track the removals");

        // A second sweep with a tighter target now takes the ex-hot
        // entries (their chance is spent), but never the in-flight one.
        sweep(&mut shard, 0, SHARD_CAP);
        assert!(shard.map.contains_key(&3), "in-flight survives any sweep");
        assert_eq!(shard.map.len(), 1);
        assert_eq!(shard.bytes, 0);
    }
}
