//! Process-wide, sharded evaluation-plan cache.
//!
//! PR 2 memoized [`EvalPlan`]s per [`crate::Workspace`] (cap-8 LRU), which
//! left two hot-path taxes on the table:
//!
//! * **Cross-workspace rebuilds.** Every solver, batch worker and plan
//!   phase that constructed its own workspace re-planned shapes the
//!   process had already planned — and a workspace touching more than 8
//!   shapes (nine round-robined strategies, an MWEM sweep) evicted and
//!   rebuilt plans on *every* call.
//! * **Per-round spine rebuilds.** MWEM-style loops rebuild a stacked
//!   `Union` each round that shares all-but-one block with the previous
//!   round, but a whole-tree cache can only miss on the new spine and
//!   re-walk every block.
//!
//! This module replaces that with one process-wide cache keyed purely by
//! the structural shape fingerprint ([`crate::plan::fingerprint`]), and
//! [`crate::plan`] fingerprints **per child** on `Union` blocks and
//! `Product`-chain factors, so a rebuilt spine reassembles from cached
//! block plans in `O(blocks)` without re-walking any shared subtree.
//!
//! Design notes:
//!
//! * **Entries never go stale** — a plan is a pure function of the shape
//!   that keys it (see the soundness argument on `fingerprint`), so there
//!   is no invalidation protocol, only an optional [`plan_cache_clear`]
//!   for benchmarks that want to price re-planning.
//! * **Sharding.** The map is split into [`SHARDS`] independent
//!   `Mutex<HashMap>` shards selected by fingerprint bits, so concurrent
//!   workspaces rarely contend; solver inner loops never reach the shards
//!   at all thanks to the workspace-local single-entry fast path.
//! * **Exactly-once builds.** Each map slot holds a `OnceLock`: racing
//!   threads that miss on the same shape agree on one canonical
//!   `Arc<EvalPlan>` and only one of them runs the planning pass (the
//!   shard lock is *not* held while building, so recursive child builds
//!   cannot deadlock).
//! * **Bounded entry count.** A shard that accumulates [`SHARD_CAP`]
//!   shapes is cleared wholesale before the next insert — a bound on
//!   *entries*, not bytes: leaf plans are a few hundred bytes but a
//!   `Union` spine plan is `O(blocks)`, so a process that keeps stacking
//!   ever-larger spines (a very long MWEM run) can retain
//!   `O(rounds²)`-ish plan memory until the cap trips. The cap keeps
//!   that bounded and a clear only costs transient rebuilds, never
//!   correctness; a size-aware eviction policy is a ROADMAP item.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::plan::EvalPlan;
use crate::Matrix;

/// Number of independent cache shards (power of two). Public so the
/// per-shard byte breakdown in [`PlanCacheStats`] has a stable, nameable
/// dimension.
pub const PLAN_CACHE_SHARDS: usize = 16;

/// Internal alias for the shard count.
const SHARDS: usize = PLAN_CACHE_SHARDS;

/// Resident shapes per shard before the shard is wholesale-cleared.
const SHARD_CAP: usize = 4096;

type Slot = Arc<OnceLock<Arc<EvalPlan>>>;

static CACHE: OnceLock<Vec<Mutex<HashMap<u64, Slot>>>> = OnceLock::new();

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static SHARED_SUBPLANS: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static [Mutex<HashMap<u64, Slot>>] {
    CACHE.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
}

fn shard(fp: u64) -> &'static Mutex<HashMap<u64, Slot>> {
    // The fingerprint is an FNV-1a product whose low bits are well mixed.
    &shards()[(fp as usize) & (SHARDS - 1)]
}

fn lock(
    m: &'static Mutex<HashMap<u64, Slot>>,
) -> std::sync::MutexGuard<'static, HashMap<u64, Slot>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The cached plan for `m` under fingerprint `fp`, building it exactly
/// once process-wide on a miss. Returns `(plan, built)` where `built` is
/// true iff *this* call ran the planning pass.
pub(crate) fn get_or_build(m: &Matrix, fp: u64) -> (Arc<EvalPlan>, bool) {
    let slot: Slot = {
        let mut map = lock(shard(fp));
        if !map.contains_key(&fp) && map.len() >= SHARD_CAP {
            map.clear();
        }
        Arc::clone(map.entry(fp).or_default())
    };
    let mut built = false;
    let plan = slot.get_or_init(|| {
        built = true;
        Arc::new(EvalPlan::build_new(m, fp))
    });
    if built {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    (Arc::clone(plan), built)
}

/// Records that a `Union`-block / `Product`-factor lookup was served from
/// the cache (the per-child sharing the MWEM round loop relies on).
pub(crate) fn note_shared_subplan() {
    SHARED_SUBPLANS.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the process-wide plan-cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache without building (includes child
    /// lookups during spine assembly).
    pub hits: u64,
    /// Lookups that had to run the planning pass.
    pub misses: u64,
    /// The subset of `hits` that were `Union`-block or `Product`-factor
    /// lookups during spine assembly — each one is a whole subtree walk
    /// the per-child sharing avoided.
    pub shared_subplans: u64,
    /// Shapes currently resident across all shards.
    pub entries: usize,
    /// Approximate heap bytes of all resident plans (each entry's
    /// *direct* footprint; `Arc`-shared sub-plans — union blocks, chain
    /// factors — count at pointer size in their parents and in full only
    /// at their own entry, so shared subtrees are not double counted).
    /// The measurable baseline for byte-weighted eviction policies.
    pub resident_bytes: usize,
    /// `resident_bytes` broken down per shard — the granularity at which
    /// the cap-and-clear (and any future size-aware eviction) operates.
    pub shard_bytes: [usize; PLAN_CACHE_SHARDS],
}

/// Current process-wide plan-cache counters. Counters are cumulative for
/// the process; tests and benchmarks diff two snapshots. Byte figures
/// walk the resident entries (bounded by `SHARD_CAP` per shard), so this
/// is a stats call, not a hot-path probe.
pub fn plan_cache_stats() -> PlanCacheStats {
    let mut entries = 0;
    let mut shard_bytes = [0usize; PLAN_CACHE_SHARDS];
    for (bytes, s) in shard_bytes.iter_mut().zip(shards()) {
        let map = lock(s);
        entries += map.len();
        *bytes = map
            .values()
            .filter_map(|slot| slot.get())
            .map(|plan| plan.direct_bytes())
            .sum();
    }
    PlanCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        shared_subplans: SHARED_SUBPLANS.load(Ordering::Relaxed),
        entries,
        resident_bytes: shard_bytes.iter().sum(),
        shard_bytes,
    }
}

/// Drops every cached plan process-wide. Never needed for correctness
/// (entries cannot go stale); benchmarks call this to price what the
/// cache removes. Workspaces holding a fast-path `Arc` keep evaluating
/// their plan unaffected — pair with [`crate::Workspace::invalidate_plans`]
/// to force a full re-plan.
pub fn plan_cache_clear() {
    for s in shards() {
        lock(s).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::fingerprint;

    // Shapes here use dimensions unique to this file so counter assertions
    // are immune to sibling tests sharing the process-wide cache.

    /// Tests that clear the cache or assert on global residency must not
    /// interleave (the test harness runs them on concurrent threads).
    static RESIDENCY: Mutex<()> = Mutex::new(());

    fn residency_lock() -> std::sync::MutexGuard<'static, ()> {
        RESIDENCY.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn exactly_one_build_per_shape_across_threads() {
        let _serial = residency_lock();
        let m = Matrix::vstack(vec![Matrix::prefix(377), Matrix::wavelet(377)]);
        let fp = fingerprint(&m);
        let plans: Vec<(Arc<EvalPlan>, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = m.clone();
                    s.spawn(move || get_or_build(&m, fingerprint(&m)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let builds = plans.iter().filter(|(_, b)| *b).count();
        assert_eq!(builds, 1, "racing lookups must agree on one build");
        for (p, _) in &plans {
            assert!(Arc::ptr_eq(p, &plans[0].0), "all threads share one plan");
        }
        // And a later lookup is a hit on the same canonical Arc.
        let (again, built) = get_or_build(&m, fp);
        assert!(!built);
        assert!(Arc::ptr_eq(&again, &plans[0].0));
    }

    #[test]
    fn clear_forces_a_rebuild() {
        let _serial = residency_lock();
        let m = Matrix::prefix(5419);
        let (_, built_first) = get_or_build(&m, fingerprint(&m));
        assert!(built_first);
        let (_, built_again) = get_or_build(&m, fingerprint(&m));
        assert!(!built_again);
        plan_cache_clear();
        let (_, built_after_clear) = get_or_build(&m, fingerprint(&m));
        assert!(built_after_clear, "clear must drop residency");
    }

    #[test]
    fn stats_track_entries() {
        let _serial = residency_lock();
        let before = plan_cache_stats();
        let m = Matrix::suffix(7451);
        let _ = get_or_build(&m, fingerprint(&m));
        let after = plan_cache_stats();
        assert!(after.misses > before.misses);
        assert!(after.entries >= 1);
    }

    #[test]
    fn stats_weigh_resident_bytes_per_shard() {
        // A leaf plan weighs a fixed struct size; a union spine adds
        // per-block records, so its entry must weigh more — the signal a
        // byte-weighted eviction policy needs. Dimensions unique to this
        // test keep the assertions immune to cache sharing, and the
        // residency lock keeps `clear_forces_a_rebuild` from evicting the
        // entries between the builds and the stats snapshot.
        let _serial = residency_lock();
        let leaf = Matrix::prefix(9973);
        let (leaf_plan, _) = get_or_build(&leaf, fingerprint(&leaf));
        let spine = Matrix::vstack(vec![Matrix::prefix(4201); 39]);
        let (spine_plan, _) = get_or_build(&spine, fingerprint(&spine));
        assert!(
            spine_plan.direct_bytes() > leaf_plan.direct_bytes(),
            "39-block spine ({}) must outweigh a leaf ({})",
            spine_plan.direct_bytes(),
            leaf_plan.direct_bytes()
        );

        let stats = plan_cache_stats();
        assert!(
            stats.resident_bytes >= leaf_plan.direct_bytes() + spine_plan.direct_bytes(),
            "resident bytes must cover at least the entries just built"
        );
        assert_eq!(
            stats.resident_bytes,
            stats.shard_bytes.iter().sum::<usize>(),
            "total must equal the per-shard breakdown"
        );
    }
}
