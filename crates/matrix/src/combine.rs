//! Combinators: Union (vstack), Product, Kronecker, scaling, transpose and
//! Gram matrices (paper §7.4, "Generalized matrix construction").

use crate::{CsrMatrix, DenseMatrix, Matrix};

impl Matrix {
    /// Vertical stacking — the paper's *Union* combinator. Nested unions are
    /// flattened so that `Union(A, Union(B, C))` and `Union(A, B, C)` are
    /// the same object.
    ///
    /// ```
    /// use ektelo_matrix::Matrix;
    /// // The H2-style strategy "every cell plus the total".
    /// let m = Matrix::vstack(vec![Matrix::identity(3), Matrix::total(3)]);
    /// assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0, 6.0]);
    /// assert_eq!(m.l1_sensitivity(), 2.0);
    /// ```
    pub fn vstack(blocks: Vec<Matrix>) -> Matrix {
        assert!(!blocks.is_empty(), "vstack of zero blocks");
        let cols = blocks[0].cols();
        let mut flat = Vec::with_capacity(blocks.len());
        for b in blocks {
            assert_eq!(b.cols(), cols, "vstack blocks must agree on column count");
            match b {
                Matrix::Union(children) => flat.extend(children),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            // xlint: allow(panic-policy, reason = "guarded by the len() == 1 check on the previous line")
            flat.pop().unwrap()
        } else {
            Matrix::Union(flat)
        }
    }

    /// Horizontal stacking, expressed as `(vstack of transposes)ᵀ`.
    pub fn hstack(blocks: Vec<Matrix>) -> Matrix {
        let transposed = blocks.into_iter().map(|b| b.transpose()).collect();
        Matrix::vstack(transposed).transpose()
    }

    /// Matrix product `a · b`. Identity factors are elided (`A·I = A`,
    /// `I·B = B`) — important because transformation lineages start at an
    /// identity and would otherwise drag an O(n) copy through every
    /// product evaluation.
    pub fn product(a: Matrix, b: Matrix) -> Matrix {
        assert_eq!(
            a.cols(),
            b.rows(),
            "product dimension mismatch: {:?} x {:?}",
            a.shape(),
            b.shape()
        );
        if matches!(a, Matrix::Identity { .. }) {
            return b;
        }
        if matches!(b, Matrix::Identity { .. }) {
            return a;
        }
        Matrix::Product(Box::new(a), Box::new(b))
    }

    /// Kronecker product `a ⊗ b`.
    ///
    /// ```
    /// use ektelo_matrix::Matrix;
    /// // A marginal over the first of two attributes: I₂ ⊗ Total₃.
    /// let w = Matrix::kron(Matrix::identity(2), Matrix::total(3));
    /// assert_eq!(w.shape(), (2, 6));
    /// assert_eq!(w.matvec(&[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]), vec![3.0, 6.0]);
    /// ```
    pub fn kron(a: Matrix, b: Matrix) -> Matrix {
        Matrix::Kronecker(Box::new(a), Box::new(b))
    }

    /// Kronecker product of a list of factors, associating to the right:
    /// `kron_list([A, B, C]) = A ⊗ (B ⊗ C)`.
    pub fn kron_list(factors: Vec<Matrix>) -> Matrix {
        assert!(!factors.is_empty(), "kron_list of zero factors");
        let mut iter = factors.into_iter().rev();
        // xlint: allow(panic-policy, reason = "guarded by the non-empty assert above")
        let mut acc = iter.next().unwrap();
        for f in iter {
            acc = Matrix::kron(f, acc);
        }
        acc
    }

    /// Scalar multiple `c · a`; nested scalings are folded.
    pub fn scaled(c: f64, a: Matrix) -> Matrix {
        match a {
            Matrix::Scaled(c2, inner) => Matrix::Scaled(c * c2, inner),
            other => Matrix::Scaled(c, Box::new(other)),
        }
    }

    /// The transpose. Structure-preserving where a closed form exists
    /// (Prefixᵀ = Suffix, Onesᵀ swaps shape, (Aᵀ)ᵀ = A, transposes push
    /// through Kronecker and scaling); otherwise a lazy
    /// [`Matrix::Transpose`] wrapper whose products delegate to
    /// [`Matrix::rmatvec_into`].
    pub fn transpose(&self) -> Matrix {
        match self {
            Matrix::Identity { n } => Matrix::Identity { n: *n },
            Matrix::Diagonal(d) => Matrix::Diagonal(d.clone()),
            Matrix::Ones { rows, cols } => Matrix::Ones {
                rows: *cols,
                cols: *rows,
            },
            Matrix::Prefix { n } => Matrix::Suffix { n: *n },
            Matrix::Suffix { n } => Matrix::Prefix { n: *n },
            Matrix::Kronecker(a, b) => Matrix::kron(a.transpose(), b.transpose()),
            Matrix::Scaled(c, a) => Matrix::scaled(*c, a.transpose()),
            Matrix::Transpose(a) => (**a).clone(),
            other => Matrix::Transpose(Box::new(other.clone())),
        }
    }

    /// The Gram matrix `AᵀA`, materialized densely (paper Table 1). Used by
    /// workload-adaptive selection operators (Greedy-H, HDMM); intended for
    /// moderate column counts.
    pub fn gram_dense(&self) -> DenseMatrix {
        if let Matrix::Sparse(s) = self {
            return s.transpose().matmul(s).to_dense();
        }
        if let Matrix::Dense(d) = self {
            return d.gram();
        }
        let n = self.cols();
        let mut out = DenseMatrix::zeros(n, n);
        let mut ws = crate::Workspace::for_matrix(self);
        let mut e = vec![0.0; n];
        let mut ae = vec![0.0; self.rows()];
        let mut col = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            self.matvec_into(&e, &mut ae, &mut ws);
            self.rmatvec_into(&ae, &mut col, &mut ws);
            for (i, &v) in col.iter().enumerate() {
                out.set(i, j, v);
            }
            e[j] = 0.0;
        }
        out
    }

    /// The Moore–Penrose pseudo-inverse of a *partition* matrix
    /// (paper Prop. 8.3): for a valid partition `P`, `P⁺ = Pᵀ D⁻¹` where
    /// `D = diag(group sizes)`.
    ///
    /// Panics if `self` is not a valid partition matrix (each column with
    /// exactly one `1`). Use [`Matrix::is_partition`] to check first.
    pub fn partition_pinv(&self) -> Matrix {
        assert!(
            self.is_partition(),
            "partition_pinv requires a partition matrix"
        );
        let sizes = self.abs_col_sums_of_transpose();
        let inv: Vec<f64> = sizes.iter().map(|&s| 1.0 / s).collect();
        Matrix::product(self.transpose(), Matrix::diagonal(inv))
    }

    /// Row sums, used for partition group sizes.
    fn abs_col_sums_of_transpose(&self) -> Vec<f64> {
        self.abs_row_sums()
    }

    /// True when the matrix is a valid partition of the domain: binary,
    /// and every column has exactly one nonzero entry.
    pub fn is_partition(&self) -> bool {
        if !self.is_nonneg() {
            return false;
        }
        let col_sums = self.abs_col_sums();
        if !col_sums.iter().all(|&s| s == 1.0) {
            return false;
        }
        // Binary check: squared column sums must match absolute column sums.
        let sq = self.sqr_col_sums();
        col_sums
            .iter()
            .zip(&sq)
            .all(|(&a, &b)| (a - b).abs() < 1e-12)
    }
}

/// Builds a partition matrix from per-cell group labels `0..p`.
/// `labels[j] = g` places cell `j` in group `g`.
pub fn partition_from_labels(num_groups: usize, labels: &[usize]) -> Matrix {
    let triplets: Vec<(usize, usize, f64)> = labels
        .iter()
        .enumerate()
        .map(|(j, &g)| {
            assert!(g < num_groups, "group label {g} out of range");
            (g, j, 1.0)
        })
        .collect();
    Matrix::sparse(CsrMatrix::from_triplets(
        num_groups,
        labels.len(),
        &triplets,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vstack_flattens() {
        let u = Matrix::vstack(vec![
            Matrix::identity(3),
            Matrix::vstack(vec![Matrix::total(3), Matrix::prefix(3)]),
        ]);
        match &u {
            Matrix::Union(blocks) => assert_eq!(blocks.len(), 3),
            other => panic!("expected flattened union, got {other:?}"),
        }
    }

    #[test]
    fn vstack_of_one_unwraps() {
        let u = Matrix::vstack(vec![Matrix::identity(3)]);
        assert!(matches!(u, Matrix::Identity { .. }));
    }

    #[test]
    fn hstack_shape_and_values() {
        let h = Matrix::hstack(vec![Matrix::identity(2), Matrix::total(2).transpose()]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.matvec(&[1.0, 2.0, 3.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn transpose_closed_forms() {
        assert!(matches!(
            Matrix::prefix(4).transpose(),
            Matrix::Suffix { n: 4 }
        ));
        assert!(matches!(
            Matrix::suffix(4).transpose(),
            Matrix::Prefix { n: 4 }
        ));
        assert!(matches!(
            Matrix::prefix(4).transpose().transpose(),
            Matrix::Prefix { n: 4 }
        ));
        let t = Matrix::wavelet(4).transpose().transpose();
        assert!(matches!(t, Matrix::Wavelet { n: 4 }));
    }

    #[test]
    fn gram_matches_dense() {
        let w = Matrix::vstack(vec![
            Matrix::prefix(4),
            Matrix::scaled(2.0, Matrix::identity(4)),
        ]);
        let g = w.gram_dense();
        let wd = w.to_dense();
        let gd = wd.gram();
        assert!(g.max_abs_diff(&gd).unwrap() < 1e-12);
    }

    #[test]
    fn partition_pinv_satisfies_p_pinv_p_eq_p() {
        let p = partition_from_labels(2, &[0, 0, 1, 1, 1]);
        assert!(p.is_partition());
        let pinv = p.partition_pinv();
        // P · P⁺ = I (2×2)
        let prod = Matrix::product(p.clone(), pinv).to_dense();
        let eye = DenseMatrix::identity(2);
        assert!(prod.max_abs_diff(&eye).unwrap() < 1e-12);
    }

    #[test]
    fn non_partition_detected() {
        let m = Matrix::from_rows(vec![vec![1.0, 1.0], vec![1.0, 0.0]]);
        assert!(!m.is_partition());
        assert!(!Matrix::wavelet(4).is_partition());
        assert!(Matrix::identity(4).is_partition());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn product_shape_mismatch_panics() {
        let _ = Matrix::product(Matrix::identity(3), Matrix::identity(4));
    }

    #[test]
    fn kron_list_associates() {
        let k = Matrix::kron_list(vec![
            Matrix::identity(2),
            Matrix::identity(3),
            Matrix::identity(4),
        ]);
        assert_eq!(k.shape(), (24, 24));
        let x: Vec<f64> = (0..24).map(|i| i as f64).collect();
        assert_eq!(k.matvec(&x), x);
    }

    #[test]
    fn scaled_folds() {
        let m = Matrix::scaled(2.0, Matrix::scaled(3.0, Matrix::identity(2)));
        match m {
            Matrix::Scaled(c, _) => assert_eq!(c, 6.0),
            other => panic!("expected folded scaling, got {other:?}"),
        }
    }
}
