#![deny(missing_docs)]
//! # ektelo-matrix
//!
//! The matrix engine behind EKTELO plans (paper §7, "Efficient matrix
//! support").
//!
//! EKTELO represents three kinds of objects as matrices: *workloads* of
//! linear counting queries, *measurement* strategies handed to the Laplace
//! mechanism, and *partitions* of the data vector. All of them have one
//! column per cell of the vectorized database, so for realistic domains an
//! explicit representation is infeasible. This crate provides:
//!
//! * **core implicit matrices** — [`Matrix::identity`], [`Matrix::ones`],
//!   [`Matrix::total`], [`Matrix::prefix`], [`Matrix::suffix`],
//!   [`Matrix::wavelet`], [`Matrix::range_queries`], [`Matrix::diagonal`] —
//!   that store `O(1)`–`O(m)` state yet evaluate matrix–vector products in
//!   `O(n)`–`O(n log n)` time (paper Table 2);
//! * **combinators** — [`Matrix::vstack`] (the paper's *Union*),
//!   [`Matrix::product`], [`Matrix::kron`], [`Matrix::scaled`],
//!   [`Matrix::transpose`] — that compose implicit matrices while delegating
//!   the primitive methods to their children (paper Table 3);
//! * **explicit representations** — [`DenseMatrix`] and CSR [`CsrMatrix`] —
//!   plus lossless conversions between all three forms, used by the
//!   evaluation to ablate the representation choice (paper Fig. 4);
//! * the five **primitive methods** every EKTELO matrix must support
//!   (paper §7.3): matrix–vector product ([`Matrix::matvec`]), transpose
//!   ([`Matrix::transpose`] / [`Matrix::rmatvec`]), matrix multiplication
//!   ([`Matrix::product`]), element-wise absolute value ([`Matrix::abs`])
//!   and element-wise square ([`Matrix::sqr`]); and derived computations:
//!   exact L1/L2 sensitivity, Gram matrices, row indexing and
//!   materialization (paper Table 1).
//!
//! ```
//! use ektelo_matrix::Matrix;
//!
//! // The Prefix workload (empirical CDF) over a domain of 5 cells:
//! let w = Matrix::prefix(5);
//! let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
//! assert_eq!(w.matvec(&x), vec![1.0, 3.0, 6.0, 10.0, 15.0]);
//! // L1 sensitivity = maximum column norm = n (cell 0 is in every prefix).
//! assert_eq!(w.l1_sensitivity(), 5.0);
//! ```

mod combine;
mod dense;
pub mod failpoints;
pub mod kernels;
mod materialize;
mod matvec;
mod plan;
mod plan_cache;
pub mod pool;
mod range;
mod rect;
mod senscache;
mod sensitivity;
mod sparse;
mod wavelet;
mod workspace;

pub use combine::partition_from_labels;
pub use dense::DenseMatrix;
pub use materialize::Repr;
pub use plan::plan_builds;
pub use plan_cache::{
    plan_cache_clear, plan_cache_max_bytes, plan_cache_set_max_bytes, plan_cache_stats,
    PlanCacheStats, PLAN_CACHE_SHARDS,
};
pub use range::RangeQueries;
pub use rect::RectQueries2D;
pub use senscache::{sens_cache_stats, SensCacheStats};
pub use sparse::CsrMatrix;
pub use workspace::Workspace;

use std::sync::Arc;

/// A linear operator over the vectorized database.
///
/// `Matrix` is a closed algebra: leaves are either explicit
/// ([`Matrix::Dense`], [`Matrix::Sparse`]) or implicit core matrices, and
/// internal nodes combine children (paper §7.4's `EMatrix` grammar). Clones
/// are cheap: explicit payloads are shared via [`Arc`] and combinator spines
/// are small.
#[derive(Clone, Debug)]
pub enum Matrix {
    /// Explicit row-major dense matrix.
    Dense(Arc<DenseMatrix>),
    /// Explicit compressed-sparse-row matrix.
    Sparse(Arc<CsrMatrix>),
    /// Diagonal matrix holding its diagonal; used for query weighting and
    /// for partition pseudo-inverses (`P⁺ = Pᵀ D⁻¹`, paper Prop. 8.3).
    Diagonal(Arc<Vec<f64>>),
    /// The n×n identity; queries every cell individually.
    Identity {
        /// Domain size.
        n: usize,
    },
    /// The all-ones matrix; `Ones { rows: 1, .. }` is the paper's *Total*.
    Ones {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Lower-triangular all-ones matrix: row k sums cells `0..=k`
    /// (the empirical-CDF workload of paper Example 7.1).
    Prefix {
        /// Domain size.
        n: usize,
    },
    /// Upper-triangular all-ones matrix; the transpose of [`Matrix::Prefix`].
    Suffix {
        /// Domain size.
        n: usize,
    },
    /// Generalized (unnormalized) Haar wavelet over a binary split tree.
    ///
    /// For power-of-two `n` this is exactly the Haar strategy used by
    /// Privelet (Xiao et al.); for other `n` the split tree uses
    /// `mid = (lo+hi)/2`. The matrix is n×n: one *total* row plus one
    /// `+1/−1` difference row per internal tree node.
    Wavelet {
        /// Domain size.
        n: usize,
    },
    /// A set of interval range queries stored as index pairs; evaluates
    /// products in `O(n + m)` via prefix-sum/difference-array tricks
    /// (paper Example 7.4 without materializing the factors).
    Range(Arc<RangeQueries>),
    /// Axis-aligned rectangle queries over a 2-D grid; the natural 2-D
    /// extension of [`Matrix::Range`] (paper §7.5) used by the QuadTree and
    /// grid strategies.
    Rect2D(Arc<RectQueries2D>),
    /// Vertical stacking of query sets (the paper's *Union* combinator).
    Union(Vec<Matrix>),
    /// Matrix product `A·B` (the paper's *Product* combinator).
    Product(Box<Matrix>, Box<Matrix>),
    /// Kronecker product `A ⊗ B` for multi-dimensional domains (§7.4).
    Kronecker(Box<Matrix>, Box<Matrix>),
    /// Scalar multiple `c·A`.
    Scaled(f64, Box<Matrix>),
    /// Lazy transpose `Aᵀ`.
    Transpose(Box<Matrix>),
}

impl Matrix {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// The n×n identity strategy.
    pub fn identity(n: usize) -> Self {
        Matrix::Identity { n }
    }

    /// The all-ones `rows×cols` matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix::Ones { rows, cols }
    }

    /// The 1×n total query.
    pub fn total(n: usize) -> Self {
        Matrix::Ones { rows: 1, cols: n }
    }

    /// The n×n prefix (empirical CDF) workload.
    pub fn prefix(n: usize) -> Self {
        Matrix::Prefix { n }
    }

    /// The n×n suffix workload.
    pub fn suffix(n: usize) -> Self {
        Matrix::Suffix { n }
    }

    /// The n×n generalized Haar wavelet strategy (Privelet).
    pub fn wavelet(n: usize) -> Self {
        assert!(n > 0, "wavelet matrix requires n > 0");
        Matrix::Wavelet { n }
    }

    /// A diagonal matrix from its diagonal entries.
    pub fn diagonal(diag: Vec<f64>) -> Self {
        Matrix::Diagonal(Arc::new(diag))
    }

    /// A workload of interval range queries `[lo, hi)` over `n` cells.
    pub fn range_queries(n: usize, ranges: Vec<(usize, usize)>) -> Self {
        Matrix::Range(Arc::new(RangeQueries::new(n, ranges)))
    }

    /// A workload of axis-aligned rectangle queries
    /// `[r_lo, r_hi) × [c_lo, c_hi)` over an `rows×cols` grid.
    pub fn rect_queries(
        rows: usize,
        cols: usize,
        rects: Vec<(usize, usize, usize, usize)>,
    ) -> Self {
        Matrix::Rect2D(Arc::new(RectQueries2D::new(rows, cols, rects)))
    }

    /// Wraps an explicit dense matrix.
    pub fn dense(m: DenseMatrix) -> Self {
        Matrix::Dense(Arc::new(m))
    }

    /// Wraps an explicit CSR matrix.
    pub fn sparse(m: CsrMatrix) -> Self {
        Matrix::Sparse(Arc::new(m))
    }

    /// Builds a dense matrix from rows (convenience for tests and small
    /// workloads).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        Matrix::dense(DenseMatrix::from_rows(rows))
    }

    /// A 1×n indicator query counting the single cell `i`.
    pub fn unit(n: usize, i: usize) -> Self {
        assert!(i < n, "unit query index {i} out of range for domain {n}");
        Matrix::sparse(CsrMatrix::from_triplets(1, n, &[(0, i, 1.0)]))
    }

    /// A row-selection matrix keeping `indices` (in order); `select · x`
    /// extracts those coordinates.
    pub fn select_rows(n: usize, indices: &[usize]) -> Self {
        let triplets: Vec<(usize, usize, f64)> = indices
            .iter()
            .enumerate()
            .map(|(r, &c)| {
                assert!(c < n, "selector index {c} out of range for domain {n}");
                (r, c, 1.0)
            })
            .collect();
        Matrix::sparse(CsrMatrix::from_triplets(indices.len(), n, &triplets))
    }

    // ---------------------------------------------------------------------
    // Shape
    // ---------------------------------------------------------------------

    /// Number of rows (queries).
    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.rows(),
            Matrix::Sparse(s) => s.rows(),
            Matrix::Diagonal(d) => d.len(),
            Matrix::Identity { n } => *n,
            Matrix::Ones { rows, .. } => *rows,
            Matrix::Prefix { n } | Matrix::Suffix { n } | Matrix::Wavelet { n } => *n,
            Matrix::Range(r) => r.num_queries(),
            Matrix::Rect2D(r) => r.num_queries(),
            Matrix::Union(blocks) => blocks.iter().map(Matrix::rows).sum(),
            Matrix::Product(a, _) => a.rows(),
            Matrix::Kronecker(a, b) => a.rows() * b.rows(),
            Matrix::Scaled(_, a) => a.rows(),
            Matrix::Transpose(a) => a.cols(),
        }
    }

    /// Number of columns (domain size).
    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.cols(),
            Matrix::Sparse(s) => s.cols(),
            Matrix::Diagonal(d) => d.len(),
            Matrix::Identity { n } => *n,
            Matrix::Ones { cols, .. } => *cols,
            Matrix::Prefix { n } | Matrix::Suffix { n } | Matrix::Wavelet { n } => *n,
            Matrix::Range(r) => r.domain(),
            Matrix::Rect2D(r) => r.domain(),
            Matrix::Union(blocks) => blocks.first().map_or(0, Matrix::cols),
            Matrix::Product(_, b) => b.cols(),
            Matrix::Kronecker(a, b) => a.cols() * b.cols(),
            Matrix::Scaled(_, a) => a.cols(),
            Matrix::Transpose(a) => a.rows(),
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// An estimate of the explicit state held by this matrix, in number of
    /// stored scalars (used by the space-usage experiments).
    pub fn stored_scalars(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.rows() * d.cols(),
            Matrix::Sparse(s) => s.nnz(),
            Matrix::Diagonal(d) => d.len(),
            Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. } => 0,
            Matrix::Range(r) => 2 * r.num_queries(),
            Matrix::Rect2D(r) => 4 * r.num_queries(),
            Matrix::Union(blocks) => blocks.iter().map(Matrix::stored_scalars).sum(),
            Matrix::Product(a, b) | Matrix::Kronecker(a, b) => {
                a.stored_scalars() + b.stored_scalars()
            }
            Matrix::Scaled(_, a) | Matrix::Transpose(a) => a.stored_scalars(),
        }
    }

    /// True when every entry of the materialized matrix is ≥ 0. This is a
    /// *structural* check: it may conservatively return `false` for
    /// compositions whose product happens to be non-negative.
    pub fn is_nonneg(&self) -> bool {
        match self {
            Matrix::Dense(d) => d.values().iter().all(|&v| v >= 0.0),
            Matrix::Sparse(s) => s.values().iter().all(|&v| v >= 0.0),
            Matrix::Diagonal(d) => d.iter().all(|&v| v >= 0.0),
            Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Range(..)
            | Matrix::Rect2D(..) => true,
            Matrix::Wavelet { n } => *n == 1,
            Matrix::Union(blocks) => blocks.iter().all(Matrix::is_nonneg),
            Matrix::Product(a, b) | Matrix::Kronecker(a, b) => a.is_nonneg() && b.is_nonneg(),
            Matrix::Scaled(c, a) => *c == 0.0 || (*c > 0.0 && a.is_nonneg()),
            Matrix::Transpose(a) => a.is_nonneg(),
        }
    }

    /// Extracts row `i` as a dense vector via `Aᵀ eᵢ` (paper Table 1,
    /// "Row indexing").
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows(), "row index {i} out of range");
        let mut e = vec![0.0; self.rows()];
        e[i] = 1.0;
        self.rmatvec(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_of_core_matrices() {
        assert_eq!(Matrix::identity(4).shape(), (4, 4));
        assert_eq!(Matrix::total(7).shape(), (1, 7));
        assert_eq!(Matrix::ones(3, 5).shape(), (3, 5));
        assert_eq!(Matrix::prefix(6).shape(), (6, 6));
        assert_eq!(Matrix::suffix(6).shape(), (6, 6));
        assert_eq!(Matrix::wavelet(8).shape(), (8, 8));
        assert_eq!(Matrix::wavelet(5).shape(), (5, 5));
        assert_eq!(Matrix::diagonal(vec![1.0, 2.0]).shape(), (2, 2));
    }

    #[test]
    fn shapes_of_combinators() {
        let a = Matrix::identity(4);
        let b = Matrix::total(4);
        let u = Matrix::vstack(vec![a.clone(), b.clone()]);
        assert_eq!(u.shape(), (5, 4));
        let k = Matrix::kron(a.clone(), Matrix::identity(3));
        assert_eq!(k.shape(), (12, 12));
        let p = Matrix::product(b, a.clone());
        assert_eq!(p.shape(), (1, 4));
        assert_eq!(a.transpose().shape(), (4, 4));
        assert_eq!(Matrix::prefix(5).transpose().shape(), (5, 5));
    }

    #[test]
    fn implicit_core_matrices_store_no_scalars() {
        assert_eq!(Matrix::prefix(1_000_000).stored_scalars(), 0);
        assert_eq!(Matrix::wavelet(1 << 20).stored_scalars(), 0);
        let k = Matrix::kron(Matrix::prefix(1 << 10), Matrix::identity(1 << 10));
        assert_eq!(k.stored_scalars(), 0);
    }

    #[test]
    fn nonnegativity_structure() {
        assert!(Matrix::prefix(4).is_nonneg());
        assert!(!Matrix::wavelet(4).is_nonneg());
        assert!(Matrix::kron(Matrix::identity(2), Matrix::total(3)).is_nonneg());
        assert!(!Matrix::scaled(-2.0, Matrix::identity(3)).is_nonneg());
    }

    #[test]
    fn row_indexing_matches_materialization() {
        let w = Matrix::vstack(vec![Matrix::prefix(4), Matrix::total(4)]);
        let d = w.to_dense();
        for i in 0..w.rows() {
            assert_eq!(w.row(i), d.row_slice(i).to_vec());
        }
    }

    #[test]
    fn unit_and_selector() {
        let u = Matrix::unit(4, 2);
        assert_eq!(u.matvec(&[1.0, 2.0, 3.0, 4.0]), vec![3.0]);
        let s = Matrix::select_rows(4, &[3, 1]);
        assert_eq!(s.matvec(&[1.0, 2.0, 3.0, 4.0]), vec![4.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_out_of_range_panics() {
        let _ = Matrix::unit(3, 3);
    }
}
