//! Sensitivity analysis and element-wise |·| / (·)² (paper Table 1).
//!
//! The L1 sensitivity of a strategy matrix M — the largest L1 column norm —
//! calibrates the Laplace mechanism's noise (`Vector Laplace` adds
//! `‖M‖₁/ε`-scale noise). Computing it exactly *without materializing* M is
//! what allows EKTELO plans to auto-calibrate noise at any scale: column
//! sums decompose over every combinator (`Union` adds them, `Kronecker`
//! multiplies them, scaling multiplies by |c|), and each core matrix has a
//! closed form.

use crate::wavelet::wavelet_abs_col_sums;
use crate::Matrix;

impl Matrix {
    /// Column sums of `|A|` — exact, without materializing `A` except for
    /// products of possibly-negative factors (see [`Matrix::abs`]).
    pub fn abs_col_sums(&self) -> Vec<f64> {
        match self {
            Matrix::Dense(d) => d.abs_pow_col_sums(1),
            Matrix::Sparse(s) => s.abs_pow_col_sums(1),
            Matrix::Diagonal(d) => d.iter().map(|v| v.abs()).collect(),
            Matrix::Identity { n } => vec![1.0; *n],
            Matrix::Ones { rows, cols } => vec![*rows as f64; *cols],
            Matrix::Prefix { n } => (0..*n).map(|j| (*n - j) as f64).collect(),
            Matrix::Suffix { n } => (0..*n).map(|j| (j + 1) as f64).collect(),
            Matrix::Wavelet { n } => wavelet_abs_col_sums(*n),
            Matrix::Range(r) => r.col_sums(),
            Matrix::Rect2D(r) => r.col_sums(),
            Matrix::Union(blocks) => {
                let mut sums = vec![0.0; self.cols()];
                for b in blocks {
                    for (s, v) in sums.iter_mut().zip(b.abs_col_sums()) {
                        *s += v;
                    }
                }
                sums
            }
            Matrix::Product(a, b) => {
                if a.is_nonneg() && b.is_nonneg() {
                    // colsums(AB) = Bᵀ (Aᵀ 1) when A, B ≥ 0.
                    b.rmatvec(&a.abs_col_sums_as_row())
                } else {
                    self.abs().abs_col_sums()
                }
            }
            Matrix::Kronecker(a, b) => {
                // |A⊗B| = |A|⊗|B|, so column sums multiply.
                kron_vec(&a.abs_col_sums(), &b.abs_col_sums())
            }
            Matrix::Scaled(c, a) => {
                let mut sums = a.abs_col_sums();
                for s in sums.iter_mut() {
                    *s *= c.abs();
                }
                sums
            }
            Matrix::Transpose(a) => a.abs_row_sums(),
        }
    }

    /// Row sums of `|A|` (L1 norms of the queries).
    pub fn abs_row_sums(&self) -> Vec<f64> {
        match self {
            Matrix::Dense(d) => (0..d.rows())
                .map(|i| d.row_slice(i).iter().map(|v| v.abs()).sum())
                .collect(),
            Matrix::Sparse(s) => (0..s.rows())
                .map(|i| s.row_entries(i).map(|(_, v)| v.abs()).sum())
                .collect(),
            Matrix::Diagonal(d) => d.iter().map(|v| v.abs()).collect(),
            Matrix::Identity { n } => vec![1.0; *n],
            Matrix::Ones { rows, cols } => vec![*cols as f64; *rows],
            Matrix::Prefix { n } => (0..*n).map(|i| (i + 1) as f64).collect(),
            Matrix::Suffix { n } => (0..*n).map(|i| (*n - i) as f64).collect(),
            Matrix::Wavelet { n } => {
                // Row widths along the pre-order traversal of the split tree.
                let mut out = Vec::with_capacity(*n);
                out.push(*n as f64);
                fn rec(lo: usize, hi: usize, out: &mut Vec<f64>) {
                    if hi - lo == 1 {
                        return;
                    }
                    out.push((hi - lo) as f64);
                    let mid = (lo + hi) / 2;
                    rec(lo, mid, out);
                    rec(mid, hi, out);
                }
                rec(0, *n, &mut out);
                out.truncate(*n);
                out
            }
            Matrix::Range(r) => r.ranges().map(|(lo, hi)| (hi - lo) as f64).collect(),
            Matrix::Rect2D(r) => r
                .rects()
                .map(|(r1, r2, c1, c2)| ((r2 - r1) * (c2 - c1)) as f64)
                .collect(),
            Matrix::Union(blocks) => blocks.iter().flat_map(|b| b.abs_row_sums()).collect(),
            Matrix::Product(a, b) => {
                if a.is_nonneg() && b.is_nonneg() {
                    // rowsums(AB) = A (B 1) when A, B ≥ 0.
                    a.matvec(&b.abs_row_sums_as_col())
                } else {
                    self.abs().abs_row_sums()
                }
            }
            Matrix::Kronecker(a, b) => kron_vec(&a.abs_row_sums(), &b.abs_row_sums()),
            Matrix::Scaled(c, a) => {
                let mut sums = a.abs_row_sums();
                for s in sums.iter_mut() {
                    *s *= c.abs();
                }
                sums
            }
            Matrix::Transpose(a) => a.abs_col_sums(),
        }
    }

    /// Column sums of `A∘A` (element-wise square), for L2 sensitivity.
    pub fn sqr_col_sums(&self) -> Vec<f64> {
        match self {
            Matrix::Dense(d) => d.abs_pow_col_sums(2),
            Matrix::Sparse(s) => s.abs_pow_col_sums(2),
            Matrix::Diagonal(d) => d.iter().map(|v| v * v).collect(),
            // Binary and ±1 matrices: squares equal absolute values.
            Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. }
            | Matrix::Range(..)
            | Matrix::Rect2D(..) => self.abs_col_sums(),
            Matrix::Union(blocks) => {
                let mut sums = vec![0.0; self.cols()];
                for b in blocks {
                    for (s, v) in sums.iter_mut().zip(b.sqr_col_sums()) {
                        *s += v;
                    }
                }
                sums
            }
            // (AB)∘² does not decompose over the factors; materialize.
            Matrix::Product(..) => Matrix::sparse(self.to_sparse()).sqr().abs_col_sums(),
            Matrix::Kronecker(a, b) => kron_vec(&a.sqr_col_sums(), &b.sqr_col_sums()),
            Matrix::Scaled(c, a) => {
                let mut sums = a.sqr_col_sums();
                for s in sums.iter_mut() {
                    *s *= c * c;
                }
                sums
            }
            Matrix::Transpose(a) => {
                // Squared row sums of the inner matrix.
                match &**a {
                    Matrix::Dense(d) => (0..d.rows())
                        .map(|i| d.row_slice(i).iter().map(|v| v * v).sum())
                        .collect(),
                    Matrix::Sparse(s) => (0..s.rows())
                        .map(|i| s.row_entries(i).map(|(_, v)| v * v).sum())
                        .collect(),
                    inner => Matrix::sparse(inner.to_sparse().transpose()).sqr_col_sums(),
                }
            }
        }
    }

    /// The L1 sensitivity `‖A‖₁` = max column sum of `|A|` (paper §5.2).
    pub fn l1_sensitivity(&self) -> f64 {
        self.abs_col_sums().into_iter().fold(0.0, f64::max)
    }

    /// Memoized [`Matrix::l1_sensitivity`]: identical value, served from a
    /// process-wide identity cache for the Arc-backed representations
    /// (`Dense`, `Sparse`, `Diagonal`, `Range`, `Rect2D`). The cache keys
    /// on payload address pinned by a [`std::sync::Weak`] guard — never on
    /// a shape fingerprint — so two equal-looking matrices cannot alias
    /// (see `senscache` for the full argument). Implicit and combinator
    /// variants fall through to the direct computation.
    pub fn l1_sensitivity_cached(&self) -> f64 {
        crate::senscache::l1_cached(self)
    }

    /// The L2 sensitivity `‖A‖₂` = max column norm.
    pub fn l2_sensitivity(&self) -> f64 {
        self.sqr_col_sums().into_iter().fold(0.0, f64::max).sqrt()
    }

    /// Element-wise absolute value as a new matrix. A no-op (clone) for
    /// structurally non-negative matrices; materializes only when a closed
    /// form does not exist (paper §7.4: "abs and sqr are simple no-ops" for
    /// the non-negative core matrices).
    pub fn abs(&self) -> Matrix {
        if self.is_nonneg() {
            return self.clone();
        }
        match self {
            Matrix::Dense(d) => Matrix::dense(d.map(f64::abs)),
            Matrix::Sparse(s) => Matrix::sparse(s.map(f64::abs)),
            Matrix::Diagonal(d) => Matrix::diagonal(d.iter().map(|v| v.abs()).collect()),
            Matrix::Union(blocks) => Matrix::Union(blocks.iter().map(Matrix::abs).collect()),
            Matrix::Kronecker(a, b) => Matrix::kron(a.abs(), b.abs()),
            Matrix::Scaled(c, a) => Matrix::scaled(c.abs(), a.abs()),
            Matrix::Transpose(a) => Matrix::Transpose(Box::new(a.abs())),
            // Wavelet and possibly-negative products: materialize.
            _ => Matrix::sparse(self.to_sparse().map(f64::abs)),
        }
    }

    /// Element-wise square as a new matrix; same materialization policy as
    /// [`Matrix::abs`].
    pub fn sqr(&self) -> Matrix {
        match self {
            Matrix::Dense(d) => Matrix::dense(d.map(|v| v * v)),
            Matrix::Sparse(s) => Matrix::sparse(s.map(|v| v * v)),
            Matrix::Diagonal(d) => Matrix::diagonal(d.iter().map(|v| v * v).collect()),
            // 0/1 and ±1 matrices square to their absolute value.
            Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Range(..)
            | Matrix::Rect2D(..) => self.clone(),
            Matrix::Wavelet { .. } => self.abs(),
            Matrix::Union(blocks) => Matrix::Union(blocks.iter().map(Matrix::sqr).collect()),
            Matrix::Kronecker(a, b) => Matrix::kron(a.sqr(), b.sqr()),
            Matrix::Scaled(c, a) => Matrix::scaled(c * c, a.sqr()),
            Matrix::Transpose(a) => Matrix::Transpose(Box::new(a.sqr())),
            Matrix::Product(..) => Matrix::sparse(self.to_sparse().map(|v| v * v)),
        }
    }

    /// `Aᵀ·1` helper used by the non-negative product fast path.
    fn abs_col_sums_as_row(&self) -> Vec<f64> {
        self.abs_col_sums()
    }

    /// `A·1` helper used by the non-negative product fast path.
    fn abs_row_sums_as_col(&self) -> Vec<f64> {
        self.abs_row_sums()
    }
}

fn kron_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &ai in a {
        for &bi in b {
            out.push(ai * bi);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_dense(m: &Matrix) {
        let d = m.to_dense();
        let abs_cols = d.map(f64::abs).abs_pow_col_sums(1);
        let got = m.abs_col_sums();
        for (g, e) in got.iter().zip(&abs_cols) {
            assert!(
                (g - e).abs() < 1e-10,
                "abs col sums mismatch: {got:?} vs {abs_cols:?}"
            );
        }
        let sq_cols = d.abs_pow_col_sums(2);
        let got2 = m.sqr_col_sums();
        for (g, e) in got2.iter().zip(&sq_cols) {
            assert!((g - e).abs() < 1e-10, "sqr col sums mismatch");
        }
        let row_sums: Vec<f64> = (0..d.rows())
            .map(|i| d.row_slice(i).iter().map(|v| v.abs()).sum())
            .collect();
        let got3 = m.abs_row_sums();
        for (g, e) in got3.iter().zip(&row_sums) {
            assert!((g - e).abs() < 1e-10, "abs row sums mismatch");
        }
    }

    #[test]
    fn core_matrices_match_dense() {
        check_against_dense(&Matrix::identity(5));
        check_against_dense(&Matrix::ones(3, 5));
        check_against_dense(&Matrix::prefix(6));
        check_against_dense(&Matrix::suffix(6));
        check_against_dense(&Matrix::wavelet(8));
        check_against_dense(&Matrix::wavelet(5));
        check_against_dense(&Matrix::range_queries(6, vec![(0, 3), (2, 6), (1, 2)]));
        check_against_dense(&Matrix::diagonal(vec![1.0, -2.0, 0.5]));
    }

    #[test]
    fn combinators_match_dense() {
        check_against_dense(&Matrix::vstack(vec![Matrix::identity(4), Matrix::total(4)]));
        check_against_dense(&Matrix::kron(Matrix::prefix(3), Matrix::identity(2)));
        check_against_dense(&Matrix::kron(Matrix::wavelet(4), Matrix::total(3)));
        check_against_dense(&Matrix::scaled(-2.5, Matrix::prefix(4)));
        check_against_dense(&Matrix::prefix(4).transpose());
        check_against_dense(&Matrix::product(Matrix::total(4), Matrix::prefix(4)));
        // Product with negative entries forces materialization.
        check_against_dense(&Matrix::product(
            Matrix::from_rows(vec![vec![1.0, -1.0]]),
            Matrix::prefix(2),
        ));
        check_against_dense(&Matrix::Transpose(Box::new(Matrix::wavelet(4))));
    }

    #[test]
    fn known_sensitivities() {
        assert_eq!(Matrix::identity(10).l1_sensitivity(), 1.0);
        assert_eq!(Matrix::total(10).l1_sensitivity(), 1.0);
        assert_eq!(Matrix::prefix(10).l1_sensitivity(), 10.0);
        assert_eq!(Matrix::wavelet(8).l1_sensitivity(), 4.0); // log2(8)+1
                                                              // H2-style: identity + total has sensitivity 2.
        let h = Matrix::vstack(vec![Matrix::identity(4), Matrix::total(4)]);
        assert_eq!(h.l1_sensitivity(), 2.0);
        // Kron multiplies sensitivities.
        let k = Matrix::kron(Matrix::prefix(4), Matrix::wavelet(8));
        assert_eq!(k.l1_sensitivity(), 16.0);
    }

    #[test]
    fn l2_of_identity_union() {
        let m = Matrix::vstack(vec![Matrix::identity(4), Matrix::identity(4)]);
        assert!((m.l2_sensitivity() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn abs_of_wavelet_materializes_correctly() {
        let a = Matrix::wavelet(4).abs();
        let expect = Matrix::wavelet(4).to_dense().map(f64::abs);
        assert!(a.to_dense().max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn scaled_sensitivity() {
        let m = Matrix::scaled(-3.0, Matrix::identity(4));
        assert_eq!(m.l1_sensitivity(), 3.0);
        assert_eq!(m.l2_sensitivity(), 3.0);
    }
}
