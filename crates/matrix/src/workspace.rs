//! Scratch-space planning for allocation-free matrix evaluation.
//!
//! Every combinator in the [`Matrix`] algebra needs transient storage to
//! evaluate a product: `Product` stores the intermediate vector, `Kronecker`
//! stores the reshaped partial products, `Range`/`Rect2D` need a prefix-sum
//! or difference array, and the accumulating transpose product needs
//! per-node temporaries. The original engine allocated these with `Vec` at
//! every tree node on every call — thousands of allocator round-trips per
//! solver iteration. Instead, a [`Workspace`] owns one flat `f64` arena
//! sized by a one-time *planning pass* over the combinator tree
//! ([`Matrix::matvec_scratch`] / [`Matrix::rmatvec_scratch`]); evaluation
//! then carves disjoint sub-slices off that arena with `split_at_mut` as it
//! recurses, so the steady state performs **zero heap allocations**.
//!
//! ```
//! use ektelo_matrix::{Matrix, Workspace};
//!
//! let m = Matrix::product(Matrix::prefix(4), Matrix::wavelet(4));
//! let mut ws = Workspace::for_matrix(&m); // one-time planning + allocation
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let mut out = [0.0; 4];
//! for _ in 0..1000 {
//!     m.matvec_into(&x, &mut out, &mut ws); // no allocation in this loop
//! }
//! assert_eq!(out[0], 10.0);
//! ```

use std::sync::Arc;

use crate::plan::{fingerprint, EvalPlan};
use crate::Matrix;

/// Cached plans kept per workspace. Solvers touch one matrix; MWEM-style
/// loops a handful. Larger sweeps evict least-recently-used shapes.
const PLAN_CACHE_CAP: usize = 8;

/// One memoized evaluation plan, keyed by the structural shape
/// fingerprint of the tree it was planned for.
#[derive(Clone, Debug)]
struct PlanSlot {
    fp: u64,
    plan: Arc<EvalPlan>,
}

/// A reusable scratch arena plus evaluation-plan cache for
/// [`Matrix::matvec_into`], [`Matrix::rmatvec_into`] and
/// [`Matrix::rmatvec_add`].
///
/// A `Workspace` may be shared freely across different matrices and all
/// product directions: the arena grows monotonically to the largest
/// requirement it has seen and never shrinks, and up to 8 evaluation plans
/// are memoized so repeat evaluations skip the planning pass entirely.
/// Constructing one with [`Workspace::for_matrix`] performs the planning
/// pass and the single allocation up front, which is what iterative
/// solvers do once per solve.
///
/// # Plan invalidation rules
///
/// There are none to worry about: cached plans are keyed by a structural
/// *shape* fingerprint (combinator structure plus every dimension the
/// planner reads — see `plan::fingerprint`), and a plan is a pure
/// function of exactly that shape, so a cache entry is valid for *any*
/// matrix with the same fingerprint — dropping, rebuilding, cloning or
/// moving matrices can never resurrect a stale plan. Each lookup costs
/// one allocation-free hash walk over the tree (a few ns per node); the
/// expensive planning pass runs only on a shape the workspace has not
/// seen, which is what the `plan_builds` counters prove in the
/// counting-allocator suites. [`Workspace::invalidate_plans`] exists to
/// release plan memory or to force re-planning in benchmarks, not for
/// correctness.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    buf: Vec<f64>,
    plans: Vec<PlanSlot>,
    hits: u64,
    builds: u64,
}

impl Workspace {
    /// An empty workspace; it will size itself lazily on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-planned and pre-sized for every product direction of
    /// `m` (`m·x`, `mᵀ·y` and the accumulating scatter) — the one-time
    /// setup of iterative solvers.
    pub fn for_matrix(m: &Matrix) -> Self {
        let mut ws = Workspace::new();
        let plan = ws.plan_for(m);
        ws.reserve(plan.max_scratch());
        ws
    }

    /// Grows the arena to at least `len` scalars.
    pub fn reserve(&mut self, len: usize) {
        if self.buf.len() < len {
            self.buf.resize(len, 0.0);
        }
    }

    /// Current arena size in scalars.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// The evaluation plan for `m`, memoized by structural shape. A
    /// lookup is one allocation-free fingerprint walk; only a shape this
    /// workspace has not seen triggers the planning pass.
    pub(crate) fn plan_for(&mut self, m: &Matrix) -> Arc<EvalPlan> {
        let fp = fingerprint(m);
        if let Some(i) = self.plans.iter().position(|s| s.fp == fp) {
            self.hits += 1;
            self.plans.swap(0, i); // keep the hot plan in front
            return Arc::clone(&self.plans[0].plan);
        }
        self.builds += 1;
        let plan = Arc::new(EvalPlan::build(m));
        debug_assert_eq!(plan.fingerprint, fp);
        self.plans.insert(
            0,
            PlanSlot {
                fp,
                plan: Arc::clone(&plan),
            },
        );
        self.plans.truncate(PLAN_CACHE_CAP);
        plan
    }

    /// Drops every cached plan (the arena is kept). Never needed for
    /// correctness — see the type-level docs; useful to release plan
    /// memory or to force re-planning in benchmarks.
    pub fn invalidate_plans(&mut self) {
        self.plans.clear();
    }

    /// Number of plan-cache hits (fingerprint lookups that skipped the
    /// planning pass) this workspace has served.
    pub fn plan_cache_hits(&self) -> u64 {
        self.hits
    }

    /// Number of planning passes (plan builds) this workspace has run.
    pub fn plan_cache_builds(&self) -> u64 {
        self.builds
    }

    /// The first `len` scalars of the arena. The `*_into` entry points
    /// reserve the full multi-direction requirement up front, so this
    /// never grows the arena mid-evaluation.
    pub(crate) fn slice(&mut self, len: usize) -> &mut [f64] {
        debug_assert!(
            len <= self.buf.len(),
            "workspace arena under-reserved: {len} > {}",
            self.buf.len()
        );
        self.reserve(len); // release-mode safety net; no-op when planned
        &mut self.buf[..len]
    }
}

impl Matrix {
    /// Scalars of scratch space the *unplanned serial recursion* needs for
    /// `A·x` — `O(tree size)` to compute. The planned engine
    /// ([`crate::plan`]) needs at most this much and strictly less on
    /// product chains; these functions remain the sizing authority for
    /// leaf nodes and for sub-evaluations that run without a plan.
    pub fn matvec_scratch(&self) -> usize {
        match self {
            Matrix::Dense(..)
            | Matrix::Sparse(..)
            | Matrix::Diagonal(..)
            | Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. } => 0,
            Matrix::Range(r) => r.scratch_len(),
            Matrix::Rect2D(r) => r.scratch_len(),
            Matrix::Union(blocks) => blocks.iter().map(Matrix::matvec_scratch).max().unwrap_or(0),
            // t = B·x (len = B.rows), then A applied to t.
            Matrix::Product(a, b) => b.rows() + a.matvec_scratch().max(b.matvec_scratch()),
            // t: na×mb partials, then per-output-column gather/apply
            // buffers col (na) and ocol (ma) while A runs.
            Matrix::Kronecker(a, b) => {
                let (ma, na) = a.shape();
                let mb = b.rows();
                na * mb + b.matvec_scratch().max(na + ma + a.matvec_scratch())
            }
            Matrix::Scaled(_, a) => a.matvec_scratch(),
            Matrix::Transpose(a) => a.rmatvec_scratch(),
        }
    }

    /// Scalars of scratch space [`Matrix::rmatvec_into`] needs.
    pub fn rmatvec_scratch(&self) -> usize {
        match self {
            Matrix::Dense(..)
            | Matrix::Sparse(..)
            | Matrix::Diagonal(..)
            | Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. } => 0,
            Matrix::Range(r) => r.scratch_len(),
            Matrix::Rect2D(r) => r.scratch_len(),
            // Unionᵀ scatter-adds per block.
            Matrix::Union(blocks) => blocks
                .iter()
                .map(Matrix::rmatvec_add_scratch)
                .max()
                .unwrap_or(0),
            // t = Aᵀ·y (len = A.cols = B.rows), then Bᵀ applied to t.
            Matrix::Product(a, b) => b.rows() + a.rmatvec_scratch().max(b.rmatvec_scratch()),
            // Mirror of the matvec case with shapes transposed.
            Matrix::Kronecker(a, b) => {
                let (ma, na) = a.shape();
                let nb = b.cols();
                ma * nb + b.rmatvec_scratch().max(ma + na + a.rmatvec_scratch())
            }
            Matrix::Scaled(_, a) => a.rmatvec_scratch(),
            Matrix::Transpose(a) => a.matvec_scratch(),
        }
    }

    /// Scalars of scratch space [`Matrix::rmatvec_add`] needs.
    pub(crate) fn rmatvec_add_scratch(&self) -> usize {
        match self {
            Matrix::Sparse(..) | Matrix::Identity { .. } | Matrix::Diagonal(..) => 0,
            Matrix::Product(a, b) => b.rows() + a.rmatvec_scratch().max(b.rmatvec_add_scratch()),
            Matrix::Scaled(_, a) => self.rows() + a.rmatvec_add_scratch(),
            Matrix::Union(blocks) => blocks
                .iter()
                .map(Matrix::rmatvec_add_scratch)
                .max()
                .unwrap_or(0),
            Matrix::Transpose(a) => a.rows() + a.matvec_scratch(),
            // Remaining shapes compute into a dense temporary of the full
            // output width, then accumulate.
            _ => self.cols() + self.rmatvec_scratch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_need_no_scratch() {
        assert_eq!(Matrix::identity(64).matvec_scratch(), 0);
        assert_eq!(Matrix::prefix(64).rmatvec_scratch(), 0);
        assert_eq!(Matrix::wavelet(64).matvec_scratch(), 0);
    }

    #[test]
    fn product_needs_intermediate() {
        let m = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        assert_eq!(m.matvec_scratch(), 8);
        assert_eq!(m.rmatvec_scratch(), 8);
    }

    #[test]
    fn nested_products_take_max_of_children() {
        // A·(B·C): outer needs rows(B·C)=8 plus inner's 8.
        let inner = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        let m = Matrix::product(Matrix::suffix(8), inner);
        assert_eq!(m.matvec_scratch(), 16);
    }

    #[test]
    fn union_takes_max_not_sum() {
        let m = Matrix::vstack(vec![
            Matrix::product(Matrix::prefix(8), Matrix::wavelet(8)),
            Matrix::product(Matrix::suffix(8), Matrix::wavelet(8)),
            Matrix::identity(8),
        ]);
        assert_eq!(m.matvec_scratch(), 8);
    }

    #[test]
    fn workspace_grows_monotonically() {
        let mut ws = Workspace::new();
        assert_eq!(ws.capacity(), 0);
        ws.reserve(10);
        ws.reserve(4);
        assert_eq!(ws.capacity(), 10);
    }

    #[test]
    fn for_matrix_covers_both_directions() {
        let m = Matrix::kron(Matrix::prefix(4), Matrix::ones(2, 8));
        let ws = Workspace::for_matrix(&m);
        assert!(ws.capacity() >= m.matvec_scratch());
        assert!(ws.capacity() >= m.rmatvec_scratch());
    }

    #[test]
    fn plan_cache_hits_on_shape_and_shares_across_clones() {
        let m = Matrix::vstack(vec![Matrix::prefix(8), Matrix::wavelet(8)]);
        let mut ws = Workspace::new();
        let p1 = ws.plan_for(&m);
        assert_eq!(ws.plan_cache_builds(), 1);
        let p2 = ws.plan_for(&m);
        assert_eq!(ws.plan_cache_builds(), 1, "second lookup must not rebuild");
        assert_eq!(ws.plan_cache_hits(), 1);
        assert!(Arc::ptr_eq(&p1, &p2));
        // A clone (and any structurally identical rebuild) shares the
        // shape fingerprint and therefore the plan.
        let m2 = m.clone();
        let p3 = ws.plan_for(&m2);
        assert_eq!(ws.plan_cache_builds(), 1);
        assert!(Arc::ptr_eq(&p1, &p3));
    }

    /// Regression (code review of ISSUE 2): reordered union blocks are a
    /// different shape and must never share a plan, even when the old
    /// matrix is dropped and the allocator hands its memory (root value,
    /// blocks `Vec`, child boxes) to the new one — the scenario that
    /// broke the address-keyed cache design. Shape-keyed plans are immune
    /// by construction; this pins the behavior.
    #[test]
    fn reordered_union_blocks_never_share_a_plan() {
        let mut ws = Workspace::new();
        let x: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        for round in 0..3 {
            // Rebuild both shapes each round so drops/reallocations of
            // structurally different trees interleave on one workspace.
            let a = Matrix::vstack(vec![Matrix::prefix(8), Matrix::total(8)]);
            let mut out_a = vec![0.0; a.rows()];
            a.matvec_into(&x, &mut out_a, &mut ws);
            assert_eq!(out_a[8], 36.0, "total row of [prefix; total]");
            assert_eq!(out_a[0], 1.0, "first prefix row (round {round})");
            drop(a);
            let b = Matrix::vstack(vec![Matrix::total(8), Matrix::prefix(8)]);
            let mut out_b = vec![0.0; b.rows()];
            b.matvec_into(&x, &mut out_b, &mut ws);
            assert_eq!(out_b[0], 36.0, "total row of [total; prefix]");
            assert_eq!(out_b[1], 1.0, "first prefix row (round {round})");
        }
        // Two shapes, two plans, built exactly once each.
        assert_eq!(ws.plan_cache_builds(), 2);
    }

    #[test]
    fn plan_cache_invalidation_and_capacity_bound() {
        let mut ws = Workspace::new();
        let keep: Vec<Matrix> = (1..=12).map(|n| Matrix::prefix(n * 4)).collect();
        for m in &keep {
            let _ = ws.plan_for(m);
        }
        assert_eq!(ws.plan_cache_builds(), 12);
        // Capacity bound: the 8 most recent shapes are resident (hits),
        // the oldest were evicted (a re-lookup rebuilds).
        for m in &keep[4..] {
            let _ = ws.plan_for(m);
        }
        assert_eq!(ws.plan_cache_builds(), 12, "recent shapes must be resident");
        let _ = ws.plan_for(&keep[0]);
        assert_eq!(ws.plan_cache_builds(), 13, "oldest shape must be evicted");
        // Invalidation: a shape known to be resident right now must
        // rebuild once the cache is cleared.
        let _ = ws.plan_for(&keep[11]);
        assert_eq!(ws.plan_cache_builds(), 13);
        ws.invalidate_plans();
        let _ = ws.plan_for(&keep[11]);
        assert_eq!(
            ws.plan_cache_builds(),
            14,
            "invalidate must force a rebuild"
        );
    }

    #[test]
    fn distinct_matrices_get_distinct_plans() {
        let a = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        let b = Matrix::product(Matrix::suffix(8), Matrix::wavelet(8));
        let mut ws = Workspace::new();
        let pa = ws.plan_for(&a);
        let pb = ws.plan_for(&b);
        assert!(!Arc::ptr_eq(&pa, &pb));
        assert_eq!(ws.plan_cache_builds(), 2);
        // Both stay resident: re-lookups are fingerprint hits.
        let _ = ws.plan_for(&a);
        let _ = ws.plan_for(&b);
        assert_eq!(ws.plan_cache_builds(), 2);
        assert_eq!(ws.plan_cache_hits(), 2);
    }
}
