//! Scratch-space planning for allocation-free matrix evaluation.
//!
//! Every combinator in the [`Matrix`] algebra needs transient storage to
//! evaluate a product: `Product` stores the intermediate vector, `Kronecker`
//! stores the reshaped partial products, `Range`/`Rect2D` need a prefix-sum
//! or difference array, and the accumulating transpose product needs
//! per-node temporaries. The original engine allocated these with `Vec` at
//! every tree node on every call — thousands of allocator round-trips per
//! solver iteration. Instead, a [`Workspace`] owns one flat `f64` arena
//! sized by a one-time *planning pass* over the combinator tree
//! ([`Matrix::matvec_scratch`] / [`Matrix::rmatvec_scratch`]); evaluation
//! then carves disjoint sub-slices off that arena with `split_at_mut` as it
//! recurses, so the steady state performs **zero heap allocations**.
//!
//! ```
//! use ektelo_matrix::{Matrix, Workspace};
//!
//! let m = Matrix::product(Matrix::prefix(4), Matrix::wavelet(4));
//! let mut ws = Workspace::for_matrix(&m); // one-time planning + allocation
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let mut out = [0.0; 4];
//! for _ in 0..1000 {
//!     m.matvec_into(&x, &mut out, &mut ws); // no allocation in this loop
//! }
//! assert_eq!(out[0], 10.0);
//! ```

use crate::Matrix;

/// A reusable scratch arena for [`Matrix::matvec_into`],
/// [`Matrix::rmatvec_into`] and [`Matrix::rmatvec_add`].
///
/// A `Workspace` may be shared freely across different matrices and both
/// product directions: it grows monotonically to the largest requirement it
/// has seen and never shrinks. Constructing one with [`Workspace::for_matrix`]
/// performs the planning pass and the single allocation up front, which is
/// what iterative solvers do once per solve.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    buf: Vec<f64>,
}

impl Workspace {
    /// An empty workspace; it will size itself lazily on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-sized for both `m·x` and `mᵀ·y` products of `m`
    /// (the planning pass of the one-time setup).
    pub fn for_matrix(m: &Matrix) -> Self {
        let mut ws = Workspace::new();
        ws.reserve(m.matvec_scratch().max(m.rmatvec_scratch()));
        ws
    }

    /// Grows the arena to at least `len` scalars.
    pub fn reserve(&mut self, len: usize) {
        if self.buf.len() < len {
            self.buf.resize(len, 0.0);
        }
    }

    /// Current arena size in scalars.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// The first `len` scalars of the arena, growing it if needed. Contents
    /// are unspecified; callers must not read before writing.
    pub(crate) fn slice(&mut self, len: usize) -> &mut [f64] {
        self.reserve(len);
        &mut self.buf[..len]
    }
}

impl Matrix {
    /// Scalars of scratch space [`Matrix::matvec_into`] needs for this
    /// matrix — the planning pass over the combinator tree. `O(tree size)`.
    pub fn matvec_scratch(&self) -> usize {
        match self {
            Matrix::Dense(..)
            | Matrix::Sparse(..)
            | Matrix::Diagonal(..)
            | Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. } => 0,
            Matrix::Range(r) => r.scratch_len(),
            Matrix::Rect2D(r) => r.scratch_len(),
            Matrix::Union(blocks) => blocks.iter().map(Matrix::matvec_scratch).max().unwrap_or(0),
            // t = B·x (len = B.rows), then A applied to t.
            Matrix::Product(a, b) => b.rows() + a.matvec_scratch().max(b.matvec_scratch()),
            // t: na×mb partials, then per-output-column gather/apply
            // buffers col (na) and ocol (ma) while A runs.
            Matrix::Kronecker(a, b) => {
                let (ma, na) = a.shape();
                let mb = b.rows();
                na * mb + b.matvec_scratch().max(na + ma + a.matvec_scratch())
            }
            Matrix::Scaled(_, a) => a.matvec_scratch(),
            Matrix::Transpose(a) => a.rmatvec_scratch(),
        }
    }

    /// Scalars of scratch space [`Matrix::rmatvec_into`] needs.
    pub fn rmatvec_scratch(&self) -> usize {
        match self {
            Matrix::Dense(..)
            | Matrix::Sparse(..)
            | Matrix::Diagonal(..)
            | Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. } => 0,
            Matrix::Range(r) => r.scratch_len(),
            Matrix::Rect2D(r) => r.scratch_len(),
            // Unionᵀ scatter-adds per block.
            Matrix::Union(blocks) => blocks
                .iter()
                .map(Matrix::rmatvec_add_scratch)
                .max()
                .unwrap_or(0),
            // t = Aᵀ·y (len = A.cols = B.rows), then Bᵀ applied to t.
            Matrix::Product(a, b) => b.rows() + a.rmatvec_scratch().max(b.rmatvec_scratch()),
            // Mirror of the matvec case with shapes transposed.
            Matrix::Kronecker(a, b) => {
                let (ma, na) = a.shape();
                let nb = b.cols();
                ma * nb + b.rmatvec_scratch().max(ma + na + a.rmatvec_scratch())
            }
            Matrix::Scaled(_, a) => a.rmatvec_scratch(),
            Matrix::Transpose(a) => a.matvec_scratch(),
        }
    }

    /// Scalars of scratch space [`Matrix::rmatvec_add`] needs.
    pub(crate) fn rmatvec_add_scratch(&self) -> usize {
        match self {
            Matrix::Sparse(..) | Matrix::Identity { .. } | Matrix::Diagonal(..) => 0,
            Matrix::Product(a, b) => b.rows() + a.rmatvec_scratch().max(b.rmatvec_add_scratch()),
            Matrix::Scaled(_, a) => self.rows() + a.rmatvec_add_scratch(),
            Matrix::Union(blocks) => blocks
                .iter()
                .map(Matrix::rmatvec_add_scratch)
                .max()
                .unwrap_or(0),
            Matrix::Transpose(a) => a.rows() + a.matvec_scratch(),
            // Remaining shapes compute into a dense temporary of the full
            // output width, then accumulate.
            _ => self.cols() + self.rmatvec_scratch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_need_no_scratch() {
        assert_eq!(Matrix::identity(64).matvec_scratch(), 0);
        assert_eq!(Matrix::prefix(64).rmatvec_scratch(), 0);
        assert_eq!(Matrix::wavelet(64).matvec_scratch(), 0);
    }

    #[test]
    fn product_needs_intermediate() {
        let m = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        assert_eq!(m.matvec_scratch(), 8);
        assert_eq!(m.rmatvec_scratch(), 8);
    }

    #[test]
    fn nested_products_take_max_of_children() {
        // A·(B·C): outer needs rows(B·C)=8 plus inner's 8.
        let inner = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        let m = Matrix::product(Matrix::suffix(8), inner);
        assert_eq!(m.matvec_scratch(), 16);
    }

    #[test]
    fn union_takes_max_not_sum() {
        let m = Matrix::vstack(vec![
            Matrix::product(Matrix::prefix(8), Matrix::wavelet(8)),
            Matrix::product(Matrix::suffix(8), Matrix::wavelet(8)),
            Matrix::identity(8),
        ]);
        assert_eq!(m.matvec_scratch(), 8);
    }

    #[test]
    fn workspace_grows_monotonically() {
        let mut ws = Workspace::new();
        assert_eq!(ws.capacity(), 0);
        ws.reserve(10);
        ws.reserve(4);
        assert_eq!(ws.capacity(), 10);
    }

    #[test]
    fn for_matrix_covers_both_directions() {
        let m = Matrix::kron(Matrix::prefix(4), Matrix::ones(2, 8));
        let ws = Workspace::for_matrix(&m);
        assert!(ws.capacity() >= m.matvec_scratch());
        assert!(ws.capacity() >= m.rmatvec_scratch());
    }
}
