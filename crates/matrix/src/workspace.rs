//! Scratch-space planning for allocation-free matrix evaluation.
//!
//! Every combinator in the [`Matrix`] algebra needs transient storage to
//! evaluate a product: `Product` stores the intermediate vector, `Kronecker`
//! stores the reshaped partial products, `Range`/`Rect2D` need a prefix-sum
//! or difference array, and the accumulating transpose product needs
//! per-node temporaries. The original engine allocated these with `Vec` at
//! every tree node on every call — thousands of allocator round-trips per
//! solver iteration. Instead, a [`Workspace`] owns one flat `f64` arena
//! sized by a one-time *planning pass* over the combinator tree
//! ([`Matrix::matvec_scratch`] / [`Matrix::rmatvec_scratch`]); evaluation
//! then carves disjoint sub-slices off that arena with `split_at_mut` as it
//! recurses, so the steady state performs **zero heap allocations**. With
//! the `parallel` feature the workspace additionally owns a pool of
//! per-worker arenas (sized at plan time) that threaded chunk workers
//! borrow instead of allocating, extending the same guarantee to the
//! threaded paths.
//!
//! ```
//! use ektelo_matrix::{Matrix, Workspace};
//!
//! let m = Matrix::product(Matrix::prefix(4), Matrix::wavelet(4));
//! let mut ws = Workspace::for_matrix(&m); // one-time planning + allocation
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let mut out = [0.0; 4];
//! for _ in 0..1000 {
//!     m.matvec_into(&x, &mut out, &mut ws); // no allocation in this loop
//! }
//! assert_eq!(out[0], 10.0);
//! ```

use std::sync::Arc;

use crate::plan::{fingerprint, EvalPlan};
use crate::{plan_cache, Matrix};

/// A pool of per-worker scratch arenas for the threaded evaluation paths.
///
/// Parallel `Union`/`Kronecker` chunk workers used to allocate their
/// scratch (and, in the scatter direction, their private accumulators) on
/// every call. The pool keeps one monotonically growing arena per worker
/// slot inside the [`Workspace`]; the evaluation plan records how many
/// workers and how large an arena the tree can ever demand
/// (`pool_workers` / `pool_arena`), the entry points size the pool up
/// front, and the parallel regions borrow disjoint `&mut [f64]` views —
/// zero steady-state allocations on the threaded paths too.
#[derive(Clone, Debug, Default)]
pub(crate) struct ArenaPool {
    arenas: Vec<Vec<f64>>,
    /// Set on the pools handed to chunk workers: a parallel region nested
    /// under a pooled worker evaluates serially instead (no nested thread
    /// spawns, no per-call worker allocations — the shapes that hit this,
    /// e.g. Kronecker-of-large-Union strategies, already saturate the
    /// machine with the outer region's workers).
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    nested: bool,
}

impl ArenaPool {
    /// The pool a chunk worker carries: empty, and marked nested so any
    /// parallel region below it falls back to the serial path.
    #[cfg(feature = "parallel")]
    pub(crate) fn for_worker() -> Self {
        ArenaPool {
            arenas: Vec::new(),
            nested: true,
        }
    }

    /// True inside a pooled chunk worker (see `for_worker`).
    #[cfg(feature = "parallel")]
    pub(crate) fn is_nested(&self) -> bool {
        self.nested
    }
    /// Grows the pool to at least `workers` arenas of at least `len`
    /// scalars each. A no-op once the pool has reached the plan-recorded
    /// requirement.
    pub(crate) fn ensure(&mut self, workers: usize, len: usize) {
        if self.arenas.len() < workers {
            // xlint: allow(warm-path-alloc, reason = "monotonic arena growth: first use grows to the plan-recorded requirement, steady state takes the no-grow branch — gated by the counting-allocator suite")
            self.arenas.resize_with(workers, Vec::new);
        }
        for a in &mut self.arenas[..workers] {
            if a.len() < len {
                // xlint: allow(warm-path-alloc, reason = "monotonic arena growth: first use grows to the plan-recorded requirement, steady state takes the no-grow branch — gated by the counting-allocator suite")
                a.resize(len, 0.0);
            }
        }
    }

    /// The first `workers` arenas as a mutable slice of backing vectors
    /// (each at least `len` long — `ensure`d here as a release-mode safety
    /// net; a correctly planned pool never grows). Workers index disjoint
    /// elements, and callers may re-read the arenas after the thread scope
    /// ends (the deterministic fixed-order merges do exactly that).
    #[cfg(feature = "parallel")]
    pub(crate) fn arenas(&mut self, workers: usize, len: usize) -> &mut [Vec<f64>] {
        self.ensure(workers, len);
        &mut self.arenas[..workers]
    }

    /// Scalars of heap storage currently held across all worker arenas.
    pub(crate) fn resident_scalars(&self) -> usize {
        self.arenas.iter().map(Vec::capacity).sum()
    }

    /// Frees every worker arena (they regrow on demand from plan-recorded
    /// sizes; see [`Workspace::shed_to`]).
    pub(crate) fn shed(&mut self) {
        self.arenas = Vec::new();
    }
}

/// A reusable scratch arena, per-worker arena pool and evaluation-plan
/// fast path for [`Matrix::matvec_into`], [`Matrix::rmatvec_into`] and
/// [`Matrix::rmatvec_add`].
///
/// A `Workspace` may be shared freely across different matrices and all
/// product directions: the arena grows monotonically to the largest
/// requirement it has seen and never shrinks. Evaluation plans live in the
/// **process-wide** plan cache (the private `plan_cache` module), shared by every
/// workspace and every thread; the workspace keeps a single-entry
/// fingerprint→plan fast path so solver inner loops — which hammer one
/// shape — never touch the shared cache's locks. Constructing one with
/// [`Workspace::for_matrix`] performs the planning lookup and the arena
/// and pool allocations up front, which is what iterative solvers do once
/// per solve.
///
/// # Plan invalidation rules
///
/// There are none to worry about: cached plans are keyed by a structural
/// *shape* fingerprint (combinator structure plus every dimension the
/// planner reads — see `plan::fingerprint`), and a plan is a pure
/// function of exactly that shape, so a cache entry is valid for *any*
/// matrix with the same fingerprint — dropping, rebuilding, cloning or
/// moving matrices can never resurrect a stale plan, in this workspace or
/// any other. Each lookup costs one allocation-free hash walk over the
/// tree (a few ns per node); the expensive planning pass runs only on a
/// shape the *process* has not seen, which is what the `plan_builds`
/// counters prove in the counting-allocator suites.
/// [`Workspace::invalidate_plans`] drops the fast path only; pair it with
/// [`crate::plan_cache_clear`] to force re-planning in benchmarks.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    buf: Vec<f64>,
    pool: ArenaPool,
    /// Single-entry lock-free fast path into the process-wide plan cache.
    fast: Option<(u64, Arc<EvalPlan>)>,
    hits: u64,
    builds: u64,
}

impl Workspace {
    /// An empty workspace; it will size itself lazily on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-planned and pre-sized for every product direction of
    /// `m` (`m·x`, `mᵀ·y` and the accumulating scatter) — the one-time
    /// setup of iterative solvers. The per-worker arena pool of the
    /// `parallel` feature is also filled here, so threaded steady-state
    /// evaluation performs no allocations either.
    pub fn for_matrix(m: &Matrix) -> Self {
        let mut ws = Workspace::new();
        let plan = ws.plan_for(m);
        ws.reserve(plan.max_scratch());
        ws.pool.ensure(plan.pool_workers, plan.pool_arena);
        ws
    }

    /// Grows the arena to at least `len` scalars.
    pub fn reserve(&mut self, len: usize) {
        if self.buf.len() < len {
            // xlint: allow(warm-path-alloc, reason = "monotonic arena growth: first use grows to the plan-recorded requirement, steady state takes the no-grow branch — gated by the counting-allocator suite")
            self.buf.resize(len, 0.0);
        }
    }

    /// Current arena size in scalars (the flat serial arena; per-worker
    /// pool arenas are counted separately).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Total scalars of heap storage this workspace currently pins: the
    /// flat serial arena plus every per-worker pool arena. The figure a
    /// byte-bounded workspace pool (the kernel's) budgets against.
    pub fn resident_scalars(&self) -> usize {
        self.buf.capacity() + self.pool.resident_scalars()
    }

    /// Shrinks resident storage to at most `max_scalars`, keeping the
    /// plan fast path (plans are `Arc`-shared and cheap) so a shed
    /// workspace still skips the planning pass when reused. The worker
    /// arena pool is dropped first — it regrows on demand to exactly the
    /// plan-recorded requirement — then the serial arena is truncated to
    /// whatever budget remains. A no-op when already within budget.
    pub fn shed_to(&mut self, max_scalars: usize) {
        if self.resident_scalars() <= max_scalars {
            return;
        }
        self.pool.shed();
        if self.buf.capacity() > max_scalars {
            self.buf.truncate(max_scalars);
            self.buf.shrink_to_fit();
        }
    }

    /// The evaluation plan for `m`: the workspace's single-entry fast path
    /// when the shape matches the previous call (lock-free — the solver
    /// inner-loop case), otherwise the process-wide shared cache. Only a
    /// shape the whole process has never seen triggers the planning pass.
    pub(crate) fn plan_for(&mut self, m: &Matrix) -> Arc<EvalPlan> {
        let fp = fingerprint(m);
        if let Some((cached_fp, plan)) = &self.fast {
            if *cached_fp == fp {
                self.hits += 1;
                return Arc::clone(plan);
            }
        }
        let (plan, built) = plan_cache::get_or_build(m, fp);
        debug_assert_eq!(plan.fingerprint, fp);
        if built {
            self.builds += 1;
        } else {
            self.hits += 1;
        }
        self.fast = Some((fp, Arc::clone(&plan)));
        plan
    }

    /// Drops the workspace's plan fast path (the arena and pool are kept).
    /// Never needed for correctness — see the type-level docs; the
    /// process-wide cache still serves the shape, so pair with
    /// [`crate::plan_cache_clear`] to genuinely force re-planning in
    /// benchmarks.
    pub fn invalidate_plans(&mut self) {
        self.fast = None;
    }

    /// Number of plan lookups this workspace served without running a
    /// planning pass (fast-path and shared-cache hits).
    pub fn plan_cache_hits(&self) -> u64 {
        self.hits
    }

    /// Number of plan lookups by this workspace that had to run the
    /// planning pass (the shape was new to the whole process).
    pub fn plan_cache_builds(&self) -> u64 {
        self.builds
    }

    /// The first `len` scalars of the arena plus the per-worker pool,
    /// split-borrowed so planned evaluation can carry both down the
    /// recursion. The `*_into` entry points reserve the direction's full
    /// requirement (and pool) before evaluation starts, so this never
    /// grows anything mid-evaluation.
    pub(crate) fn carve(
        &mut self,
        len: usize,
        pool_workers: usize,
        pool_arena: usize,
    ) -> (&mut [f64], &mut ArenaPool) {
        debug_assert!(
            len <= self.buf.len(),
            "workspace arena under-reserved: {len} > {}",
            self.buf.len()
        );
        self.reserve(len); // release-mode safety net; no-op when planned
        self.pool.ensure(pool_workers, pool_arena);
        (&mut self.buf[..len], &mut self.pool)
    }
}

impl Matrix {
    /// Scalars of scratch space the *unplanned serial recursion* needs for
    /// `A·x` — `O(tree size)` to compute. The planned engine
    /// (the private `plan` module) needs at most this much and strictly less on
    /// product chains; these functions remain the sizing authority for
    /// leaf nodes and for sub-evaluations that run without a plan.
    pub fn matvec_scratch(&self) -> usize {
        match self {
            Matrix::Dense(..)
            | Matrix::Sparse(..)
            | Matrix::Diagonal(..)
            | Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. } => 0,
            Matrix::Range(r) => r.scratch_len(),
            Matrix::Rect2D(r) => r.scratch_len(),
            Matrix::Union(blocks) => blocks.iter().map(Matrix::matvec_scratch).max().unwrap_or(0),
            // t = B·x (len = B.rows), then A applied to t.
            Matrix::Product(a, b) => b.rows() + a.matvec_scratch().max(b.matvec_scratch()),
            // t: na×mb partials, then per-output-column gather/apply
            // buffers col (na) and ocol (ma) while A runs.
            Matrix::Kronecker(a, b) => {
                let (ma, na) = a.shape();
                let mb = b.rows();
                na * mb + b.matvec_scratch().max(na + ma + a.matvec_scratch())
            }
            Matrix::Scaled(_, a) => a.matvec_scratch(),
            Matrix::Transpose(a) => a.rmatvec_scratch(),
        }
    }

    /// Scalars of scratch space [`Matrix::rmatvec_into`] needs.
    pub fn rmatvec_scratch(&self) -> usize {
        match self {
            Matrix::Dense(..)
            | Matrix::Sparse(..)
            | Matrix::Diagonal(..)
            | Matrix::Identity { .. }
            | Matrix::Ones { .. }
            | Matrix::Prefix { .. }
            | Matrix::Suffix { .. }
            | Matrix::Wavelet { .. } => 0,
            Matrix::Range(r) => r.scratch_len(),
            Matrix::Rect2D(r) => r.scratch_len(),
            // Unionᵀ scatter-adds per block.
            Matrix::Union(blocks) => blocks
                .iter()
                .map(Matrix::rmatvec_add_scratch)
                .max()
                .unwrap_or(0),
            // t = Aᵀ·y (len = A.cols = B.rows), then Bᵀ applied to t.
            Matrix::Product(a, b) => b.rows() + a.rmatvec_scratch().max(b.rmatvec_scratch()),
            // Mirror of the matvec case with shapes transposed.
            Matrix::Kronecker(a, b) => {
                let (ma, na) = a.shape();
                let nb = b.cols();
                ma * nb + b.rmatvec_scratch().max(ma + na + a.rmatvec_scratch())
            }
            Matrix::Scaled(_, a) => a.rmatvec_scratch(),
            Matrix::Transpose(a) => a.matvec_scratch(),
        }
    }

    /// Scalars of scratch space [`Matrix::rmatvec_add`] needs.
    pub(crate) fn rmatvec_add_scratch(&self) -> usize {
        match self {
            Matrix::Sparse(..) | Matrix::Identity { .. } | Matrix::Diagonal(..) => 0,
            Matrix::Product(a, b) => b.rows() + a.rmatvec_scratch().max(b.rmatvec_add_scratch()),
            Matrix::Scaled(_, a) => self.rows() + a.rmatvec_add_scratch(),
            Matrix::Union(blocks) => blocks
                .iter()
                .map(Matrix::rmatvec_add_scratch)
                .max()
                .unwrap_or(0),
            Matrix::Transpose(a) => a.rows() + a.matvec_scratch(),
            // Remaining shapes compute into a dense temporary of the full
            // output width, then accumulate.
            _ => self.cols() + self.rmatvec_scratch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Dimensions in these tests are unique to this file (and distinct per
    // test): the plan cache is process-wide and the harness runs tests
    // concurrently, so reusing a shape another test builds would turn this
    // workspace's "build" into a "hit" and flake the counter assertions.

    #[test]
    fn leaves_need_no_scratch() {
        assert_eq!(Matrix::identity(64).matvec_scratch(), 0);
        assert_eq!(Matrix::prefix(64).rmatvec_scratch(), 0);
        assert_eq!(Matrix::wavelet(64).matvec_scratch(), 0);
    }

    #[test]
    fn product_needs_intermediate() {
        let m = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        assert_eq!(m.matvec_scratch(), 8);
        assert_eq!(m.rmatvec_scratch(), 8);
    }

    #[test]
    fn nested_products_take_max_of_children() {
        // A·(B·C): outer needs rows(B·C)=8 plus inner's 8.
        let inner = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        let m = Matrix::product(Matrix::suffix(8), inner);
        assert_eq!(m.matvec_scratch(), 16);
    }

    #[test]
    fn union_takes_max_not_sum() {
        let m = Matrix::vstack(vec![
            Matrix::product(Matrix::prefix(8), Matrix::wavelet(8)),
            Matrix::product(Matrix::suffix(8), Matrix::wavelet(8)),
            Matrix::identity(8),
        ]);
        assert_eq!(m.matvec_scratch(), 8);
    }

    #[test]
    fn workspace_grows_monotonically() {
        let mut ws = Workspace::new();
        assert_eq!(ws.capacity(), 0);
        ws.reserve(10);
        ws.reserve(4);
        assert_eq!(ws.capacity(), 10);
    }

    #[test]
    fn for_matrix_covers_both_directions() {
        let m = Matrix::kron(Matrix::prefix(4), Matrix::ones(2, 8));
        let ws = Workspace::for_matrix(&m);
        assert!(ws.capacity() >= m.matvec_scratch());
        assert!(ws.capacity() >= m.rmatvec_scratch());
    }

    #[test]
    fn plan_cache_hits_on_shape_and_shares_across_clones() {
        let m = Matrix::vstack(vec![Matrix::prefix(184), Matrix::wavelet(184)]);
        let mut ws = Workspace::new();
        let p1 = ws.plan_for(&m);
        assert_eq!(ws.plan_cache_builds(), 1);
        let p2 = ws.plan_for(&m);
        assert_eq!(ws.plan_cache_builds(), 1, "second lookup must not rebuild");
        assert_eq!(ws.plan_cache_hits(), 1);
        assert!(Arc::ptr_eq(&p1, &p2));
        // A clone (and any structurally identical rebuild) shares the
        // shape fingerprint and therefore the plan.
        let m2 = m.clone();
        let p3 = ws.plan_for(&m2);
        assert_eq!(ws.plan_cache_builds(), 1);
        assert!(Arc::ptr_eq(&p1, &p3));
    }

    /// The satellite of ISSUE 3: two workspaces — and two pool-executed
    /// workers with their own workspaces — evaluating the same shape must
    /// observe one `EvalPlan` build and pointer-identical plans.
    #[test]
    fn plans_shared_across_workspaces_and_threads() {
        let m = Matrix::vstack(vec![
            Matrix::product(Matrix::prefix(232), Matrix::wavelet(232)),
            Matrix::identity(232),
        ]);
        let mut w1 = Workspace::new();
        let mut w2 = Workspace::new();
        let p1 = w1.plan_for(&m);
        let p2 = w2.plan_for(&m);
        assert!(Arc::ptr_eq(&p1, &p2), "workspaces must share one plan");
        assert_eq!(
            w1.plan_cache_builds() + w2.plan_cache_builds(),
            1,
            "exactly one of the two lookups runs the planning pass"
        );
        let mut thread_plans: Vec<Option<Arc<EvalPlan>>> = vec![None; 2];
        crate::pool::scope(|s| {
            for slot in thread_plans.iter_mut() {
                let m = m.clone();
                s.spawn(move || {
                    let mut ws = Workspace::new();
                    let plan = ws.plan_for(&m);
                    // The worker actually evaluates through the shared
                    // plan, not just fetches it.
                    let x: Vec<f64> = (0..m.cols()).map(|i| i as f64).collect();
                    let mut out = vec![0.0; m.rows()];
                    m.matvec_into(&x, &mut out, &mut ws);
                    // Identity block starts at row 232: row 233 = x[1].
                    assert_eq!(out[233], 1.0);
                    *slot = Some(plan);
                });
            }
        });
        for p in &thread_plans {
            assert!(
                Arc::ptr_eq(p.as_ref().expect("worker ran"), &p1),
                "pool workers must observe the same shared plan"
            );
        }
    }

    /// Regression (code review of ISSUE 2): reordered union blocks are a
    /// different shape and must never share a plan, even when the old
    /// matrix is dropped and the allocator hands its memory (root value,
    /// blocks `Vec`, child boxes) to the new one — the scenario that
    /// broke the address-keyed cache design. Shape-keyed plans are immune
    /// by construction; this pins the behavior.
    #[test]
    fn reordered_union_blocks_never_share_a_plan() {
        let mut ws = Workspace::new();
        let x: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        for round in 0..3 {
            // Rebuild both shapes each round so drops/reallocations of
            // structurally different trees interleave on one workspace.
            let a = Matrix::vstack(vec![Matrix::prefix(8), Matrix::total(8)]);
            let mut out_a = vec![0.0; a.rows()];
            a.matvec_into(&x, &mut out_a, &mut ws);
            assert_eq!(out_a[8], 36.0, "total row of [prefix; total]");
            assert_eq!(out_a[0], 1.0, "first prefix row (round {round})");
            drop(a);
            let b = Matrix::vstack(vec![Matrix::total(8), Matrix::prefix(8)]);
            let mut out_b = vec![0.0; b.rows()];
            b.matvec_into(&x, &mut out_b, &mut ws);
            assert_eq!(out_b[0], 36.0, "total row of [total; prefix]");
            assert_eq!(out_b[1], 1.0, "first prefix row (round {round})");
        }
    }

    /// The PR-2 pathology this PR removes: more shapes than the old cap-8
    /// per-workspace LRU could hold, round-robined through one workspace,
    /// used to rebuild plans on *every* call. With the process-wide cache
    /// every shape stays resident, and invalidating the workspace fast
    /// path does not lose residency either.
    #[test]
    fn many_shapes_round_robin_without_eviction() {
        let mut ws = Workspace::new();
        let shapes: Vec<Matrix> = (0..12).map(|i| Matrix::prefix(1000 + i * 4)).collect();
        for m in &shapes {
            let _ = ws.plan_for(m);
        }
        assert_eq!(ws.plan_cache_builds(), 12);
        // Three more full rotations: every lookup is a hit.
        for _ in 0..3 {
            for m in &shapes {
                let _ = ws.plan_for(m);
            }
        }
        assert_eq!(
            ws.plan_cache_builds(),
            12,
            "round-robined shapes must stay resident (no cap-8 eviction)"
        );
        // Fast-path invalidation only forgets the workspace's last shape;
        // the process-wide cache still serves everything without a build.
        ws.invalidate_plans();
        for m in &shapes {
            let _ = ws.plan_for(m);
        }
        assert_eq!(ws.plan_cache_builds(), 12);
    }

    #[test]
    fn distinct_matrices_get_distinct_plans() {
        let a = Matrix::product(Matrix::prefix(296), Matrix::wavelet(296));
        let b = Matrix::product(Matrix::suffix(296), Matrix::wavelet(296));
        let mut ws = Workspace::new();
        let pa = ws.plan_for(&a);
        let pb = ws.plan_for(&b);
        assert!(!Arc::ptr_eq(&pa, &pb));
        assert_eq!(ws.plan_cache_builds(), 2);
        // Both stay resident: re-lookups are hits (one through the global
        // cache, one through the restored fast path).
        let _ = ws.plan_for(&a);
        let _ = ws.plan_for(&b);
        assert_eq!(ws.plan_cache_builds(), 2);
        assert_eq!(ws.plan_cache_hits(), 2);
    }
}
