//! Cached evaluation plans for the combinator tree.
//!
//! PR 1's engine removed per-call heap allocations but still re-ran the
//! *planning pass* — the `O(tree)` recursion computing scratch sizes, split
//! offsets and shapes — on every `matvec_into` call. An [`EvalPlan`] runs
//! that pass **once** and records everything evaluation needs:
//!
//! * per-node **split offsets** (block row ranges of a `Union`, factor
//!   shapes of a `Kronecker`, intermediate lengths of a `Product` chain),
//! * the total **scratch requirement** of all three product directions
//!   (`matvec`, `rmatvec`, `rmatvec_add`), so the arena is reserved in full
//!   up front and never grows mid-evaluation,
//! * plan-time **parallel-chunk decisions** for the `parallel` feature
//!   (thread counts and chunk sizes are fixed when the plan is built, which
//!   is what makes threaded evaluation deterministic), together with the
//!   **worker-pool requirement** — how many per-worker arenas of what size
//!   threaded evaluation borrows from the [`crate::Workspace`] pool — and
//! * a **ping-pong buffer assignment** for right-nested `Product` chains:
//!   a chain of `k` products needs only `min(k, 2)` intermediate buffers
//!   instead of the `k` the nested recursion carved, shrinking the working
//!   set of lineage-shaped trees (the shape every kernel-transformed
//!   source drags through inference) by up to `k/2`×.
//!
//! Plans are shared through the **process-wide cache** of
//! [`crate::plan_cache`], keyed purely by the structural shape fingerprint;
//! `Union` blocks and `Product`-chain factors are fingerprinted and cached
//! **individually**, so a spine that is rebuilt with mostly-unchanged
//! children (an MWEM round stacking one more measurement onto last round's
//! union) reassembles from cached block plans in `O(blocks)` without
//! re-walking any shared subtree. Each [`crate::Workspace`] additionally
//! keeps a single-entry fast path so solver inner loops never touch the
//! shared cache's locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::plan_cache;
use crate::Matrix;

/// Number of planning-pass tree walks performed process-wide over
/// *uncached* structure. Spine assembly (`Union`/`Product` nodes rebuilt
/// from cached child plans) is `O(children)` bookkeeping, not a tree walk,
/// and deliberately does not count — which is exactly what lets the MWEM
/// regression tests assert this counter stays flat while rounds keep
/// stacking new spines. Exposed through [`plan_builds`].
static PLAN_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total planning-pass tree walks this process has run (see
/// `PLAN_BUILDS` for what counts as one).
///
/// A solver iterating over a fixed system must not move this counter: the
/// plan is built once — the first time *any* workspace in the process sees
/// the shape — and every later call is a cache hit. Regression tests
/// assert the delta across extra iterations (and across MWEM-style rounds
/// that re-stack cached blocks under fresh spines) is exactly zero.
pub fn plan_builds() -> u64 {
    PLAN_BUILDS.load(Ordering::Relaxed)
}

/// Work threshold below which parallel evaluation is never chosen (scalar
/// ops; spinning up threads costs more than this much arithmetic).
#[cfg(feature = "parallel")]
const MIN_PAR_WORK: usize = 1 << 14;

/// The process-constant parallelism chunk decisions are built from —
/// [`crate::pool::configured_parallelism`], *not* the pool's current
/// worker count: plans are cached process-wide and results must be
/// bit-identical however many pool workers end up executing the chunks.
#[cfg(feature = "parallel")]
fn threads() -> usize {
    crate::pool::configured_parallelism()
}

/// A fully planned evaluation of one matrix: the per-node records plus the
/// arena requirement of every direction.
#[derive(Debug)]
pub(crate) struct EvalPlan {
    /// Per-node plan mirroring the combinator tree.
    pub root: NodePlan,
    /// Cached shape (saves the `O(tree)` `rows()`/`cols()` walks in the
    /// entry-point assertions).
    pub rows: usize,
    /// See `rows`.
    pub cols: usize,
    /// Arena scalars `matvec_into` draws.
    pub mv_scratch: usize,
    /// Arena scalars `rmatvec_into` draws.
    pub rmv_scratch: usize,
    /// Arena scalars `rmatvec_add` draws.
    pub rmva_scratch: usize,
    /// Most worker arenas any single parallel region of this tree uses
    /// (0 when nothing parallelizes); sizes the workspace arena pool.
    pub pool_workers: usize,
    /// Largest per-worker arena any parallel region of this tree draws.
    pub pool_arena: usize,
    /// Structural fingerprint of the tree this plan was built for.
    pub fingerprint: u64,
}

impl EvalPlan {
    /// The arena size covering every direction — reserved in full, up
    /// front, by the `*_into` entry points so evaluation never grows the
    /// arena mid-solve.
    pub fn max_scratch(&self) -> usize {
        self.mv_scratch.max(self.rmv_scratch).max(self.rmva_scratch)
    }

    /// Approximate heap bytes owned *directly* by this plan: its struct
    /// plus every inline node record, counting `Arc`-shared sub-plans
    /// (`Union` blocks, `Product`-chain factors) at pointer size only —
    /// the cache holds those as entries of their own, so summing
    /// `direct_bytes` over all cached entries approximates total
    /// resident plan memory without double counting shared subtrees.
    pub(crate) fn direct_bytes(&self) -> usize {
        std::mem::size_of::<EvalPlan>() + self.root.direct_bytes()
    }

    /// The shared cached plan for `m`: a process-wide cache hit, or the
    /// one-time planning pass on the first sighting of the shape.
    /// (`Workspace::plan_for` goes through `plan_cache::get_or_build`
    /// directly to keep its build counter; this is the plain entry.)
    #[cfg(test)]
    pub fn cached(m: &Matrix) -> Arc<EvalPlan> {
        let (plan, _) = plan_cache::get_or_build(m, fingerprint(m));
        plan
    }

    /// The cached plan for a `Union` block or `Product`-chain factor
    /// during spine assembly (counts cache hits as shared sub-plans).
    fn cached_child(m: &Matrix) -> Arc<EvalPlan> {
        let (plan, built) = plan_cache::get_or_build(m, fingerprint(m));
        if !built {
            plan_cache::note_shared_subplan();
        }
        plan
    }

    /// Builds the plan for `m` under fingerprint `fp` (called by the
    /// process-wide cache on a miss; everyone else goes through
    /// [`EvalPlan::cached`]).
    pub(crate) fn build_new(m: &Matrix, fp: u64) -> EvalPlan {
        let (root, info) = match m {
            // Spines assemble from individually cached children — an
            // O(children) reassembly, not a planning-pass walk.
            Matrix::Union(blocks) => plan_union(blocks),
            Matrix::Product(..) => plan_chain(m),
            _ => {
                PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
                plan_node(m)
            }
        };
        EvalPlan {
            root,
            rows: info.rows,
            cols: info.cols,
            mv_scratch: info.mv,
            rmv_scratch: info.rmv,
            rmva_scratch: info.rmva,
            pool_workers: info.pool_workers,
            pool_arena: info.pool_arena,
            fingerprint: fp,
        }
    }
}

/// The per-node evaluation record. Variants mirror the combinator arms of
/// [`Matrix`]; every leaf (explicit or implicit core matrix) is
/// [`NodePlan::Leaf`] and evaluates through the unplanned serial kernels.
#[derive(Debug)]
pub(crate) enum NodePlan {
    /// Core/explicit matrices: no tree structure below, `O(1)` planning.
    Leaf,
    /// `Union` with per-block row spans and chunk decisions.
    Union(UnionPlan),
    /// A maximal right-nested `Product` chain with ping-pong buffers.
    Chain(ChainPlan),
    /// `Kronecker` with both factor shapes and stage chunk decisions.
    Kron(KronPlan),
    /// `Scaled`; `rows` feeds the `rmatvec_add` temporary.
    Scaled {
        /// Rows of the scaled matrix.
        rows: usize,
        /// Plan of the inner matrix.
        child: Box<NodePlan>,
    },
    /// Lazy transpose; directions swap when descending.
    Transpose {
        /// Rows of the *inner* matrix (length of the `rmatvec_add`
        /// temporary).
        child_rows: usize,
        /// Plan of the inner matrix.
        child: Box<NodePlan>,
    },
}

impl NodePlan {
    /// Heap bytes owned by this node record and its *inline* children
    /// (see [`EvalPlan::direct_bytes`] for the sharing convention).
    fn direct_bytes(&self) -> usize {
        let node = std::mem::size_of::<NodePlan>();
        match self {
            NodePlan::Leaf => 0,
            NodePlan::Union(u) => {
                u.block_rows.capacity() * std::mem::size_of::<usize>()
                    + u.blocks.capacity() * std::mem::size_of::<Arc<EvalPlan>>()
            }
            NodePlan::Chain(c) => {
                c.factors.capacity() * std::mem::size_of::<Arc<EvalPlan>>()
                    + c.rows.capacity() * std::mem::size_of::<usize>()
            }
            NodePlan::Kron(k) => 2 * node + k.a.direct_bytes() + k.b.direct_bytes(),
            NodePlan::Scaled { child, .. } | NodePlan::Transpose { child, .. } => {
                node + child.direct_bytes()
            }
        }
    }
}

/// Plan records for one `Union` node. Block sub-plans are `Arc`-shared
/// through the process-wide cache, so two spines stacking the same block
/// shapes hold the *same* block plans.
// The chunk-decision fields are only read by the threaded evaluators.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
#[derive(Debug)]
pub(crate) struct UnionPlan {
    /// Rows of each block, in order (the split offsets of the stacked
    /// output/input vector).
    pub block_rows: Vec<usize>,
    /// Per-block sub-plans, shared with every other spine that stacks the
    /// same block shape.
    pub blocks: Vec<Arc<EvalPlan>>,
    /// Blocks per worker in the forward (matvec) direction; `0` = serial.
    pub par_fwd_chunk: usize,
    /// Blocks per worker in the transpose/scatter direction; `0` = serial.
    pub par_bwd_chunk: usize,
    /// Largest per-block `matvec` scratch need (sizes the per-worker
    /// arenas of the parallel forward path).
    pub block_mv_scratch: usize,
    /// Largest per-block `rmatvec_add` scratch need (sizes the per-worker
    /// arenas of the parallel scatter path).
    pub block_rmva_scratch: usize,
}

/// Plan records for a maximal right-nested `Product` chain
/// `f_0 · f_1 · … · f_m` (`m ≥ 1` products, `m + 1` factors).
#[derive(Debug)]
pub(crate) struct ChainPlan {
    /// Sub-plans of the factors `f_0 ..= f_m`, outermost first —
    /// `Arc`-shared through the process-wide cache like union blocks.
    pub factors: Vec<Arc<EvalPlan>>,
    /// `rows(f_j)` for every factor. Intermediate `s_j` (the running
    /// product applied to the input) has length `rows[j]` in the forward
    /// direction and `rows[j + 1]` in the transpose direction.
    pub rows: Vec<usize>,
    /// Length of one ping-pong buffer: the largest intermediate.
    pub buf_len: usize,
    /// Number of ping-pong buffers carved (`1` for a single product,
    /// else `2` — the liveness argument: evaluating a chain only ever
    /// needs the previous intermediate and the one being written).
    pub bufs: usize,
}

/// Plan records for one `Kronecker` node `A ⊗ B`.
// The chunk-decision fields are only read by the threaded evaluators.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
#[derive(Debug)]
pub(crate) struct KronPlan {
    /// Shape of `A`.
    pub a_rows: usize,
    /// See `a_rows`.
    pub a_cols: usize,
    /// Shape of `B`.
    pub b_rows: usize,
    /// See `b_rows`.
    pub b_cols: usize,
    /// Sub-plan of `A`.
    pub a: Box<NodePlan>,
    /// Sub-plan of `B`.
    pub b: Box<NodePlan>,
    /// Stage-1 rows per worker, forward direction; `0` = serial.
    pub par_fwd_rows: usize,
    /// Stage-1 rows per worker, transpose direction; `0` = serial.
    pub par_bwd_rows: usize,
    /// Stage-2 output columns per worker, transpose direction; `0` =
    /// serial. (The "Kronecker column-chunk" parallel scatter path.)
    pub par_bwd_cols: usize,
    /// `matvec` scratch of `B` (sizes per-worker arenas in stage 1).
    pub b_mv_scratch: usize,
    /// `rmatvec` scratch of `B`.
    pub b_rmv_scratch: usize,
    /// `rmatvec` scratch of `A` (sizes per-worker arenas in stage 2).
    pub a_rmv_scratch: usize,
}

/// Planning facts about one subtree.
#[derive(Clone, Copy, Debug)]
struct Info {
    rows: usize,
    cols: usize,
    /// `matvec` scratch of the *planned* evaluation (≤ the unplanned
    /// recursion's requirement; chains shrink it).
    mv: usize,
    /// `rmatvec` scratch.
    rmv: usize,
    /// `rmatvec_add` scratch.
    rmva: usize,
    /// Most worker arenas any parallel region below (or at) this node
    /// borrows at once.
    pool_workers: usize,
    /// Largest per-worker arena any such region draws.
    pool_arena: usize,
}

fn plan_node(m: &Matrix) -> (NodePlan, Info) {
    match m {
        Matrix::Dense(..)
        | Matrix::Sparse(..)
        | Matrix::Diagonal(..)
        | Matrix::Identity { .. }
        | Matrix::Ones { .. }
        | Matrix::Prefix { .. }
        | Matrix::Suffix { .. }
        | Matrix::Wavelet { .. }
        | Matrix::Range(..)
        | Matrix::Rect2D(..) => (
            NodePlan::Leaf,
            Info {
                rows: m.rows(),
                cols: m.cols(),
                mv: m.matvec_scratch(),
                rmv: m.rmatvec_scratch(),
                rmva: m.rmatvec_add_scratch(),
                pool_workers: 0,
                pool_arena: 0,
            },
        ),
        Matrix::Union(blocks) => plan_union(blocks),
        Matrix::Product(..) => plan_chain(m),
        Matrix::Kronecker(a, b) => plan_kron(a, b),
        Matrix::Scaled(_, a) => {
            let (child, ci) = plan_node(a);
            let info = Info {
                rmva: ci.rows + ci.rmva,
                ..ci
            };
            (
                NodePlan::Scaled {
                    rows: ci.rows,
                    child: Box::new(child),
                },
                info,
            )
        }
        Matrix::Transpose(a) => {
            let (child, ci) = plan_node(a);
            let info = Info {
                rows: ci.cols,
                cols: ci.rows,
                mv: ci.rmv,
                rmv: ci.mv,
                rmva: ci.rows + ci.mv,
                ..ci
            };
            (
                NodePlan::Transpose {
                    child_rows: ci.rows,
                    child: Box::new(child),
                },
                info,
            )
        }
    }
}

fn plan_union(blocks: &[Matrix]) -> (NodePlan, Info) {
    let built: Vec<Arc<EvalPlan>> = blocks.iter().map(EvalPlan::cached_child).collect();
    let rows: usize = built.iter().map(|p| p.rows).sum();
    let cols = built.first().map_or(0, |p| p.cols);
    let block_mv = built.iter().map(|p| p.mv_scratch).max().unwrap_or(0);
    let block_rmva = built.iter().map(|p| p.rmva_scratch).max().unwrap_or(0);
    #[cfg_attr(not(feature = "parallel"), allow(unused_mut))]
    let mut pool_workers = built.iter().map(|p| p.pool_workers).max().unwrap_or(0);
    #[cfg_attr(not(feature = "parallel"), allow(unused_mut))]
    let mut pool_arena = built.iter().map(|p| p.pool_arena).max().unwrap_or(0);

    #[cfg(feature = "parallel")]
    let (par_fwd_chunk, par_bwd_chunk) = {
        let nthreads = threads().min(blocks.len());
        let fwd = if nthreads >= 2 && rows * 2 + cols >= MIN_PAR_WORK {
            blocks.len().div_ceil(nthreads)
        } else {
            0
        };
        // The scatter direction pays an extra `threads · cols` for the
        // per-worker accumulators and their merge, so it needs the stacked
        // row count itself to clear the threshold.
        let bwd = if nthreads >= 2 && rows >= MIN_PAR_WORK && rows >= cols {
            blocks.len().div_ceil(nthreads)
        } else {
            0
        };
        if fwd > 0 {
            pool_workers = pool_workers.max(blocks.len().div_ceil(fwd));
            pool_arena = pool_arena.max(block_mv);
        }
        if bwd > 0 {
            pool_workers = pool_workers.max(blocks.len().div_ceil(bwd));
            // Scatter workers carve a full-width accumulator plus block
            // scratch out of one arena.
            pool_arena = pool_arena.max(cols + block_rmva);
        }
        (fwd, bwd)
    };
    #[cfg(not(feature = "parallel"))]
    let (par_fwd_chunk, par_bwd_chunk) = (0, 0);

    let info = Info {
        rows,
        cols,
        mv: block_mv,
        rmv: block_rmva,
        rmva: block_rmva,
        pool_workers,
        pool_arena,
    };
    (
        NodePlan::Union(UnionPlan {
            block_rows: built.iter().map(|p| p.rows).collect(),
            blocks: built,
            par_fwd_chunk,
            par_bwd_chunk,
            block_mv_scratch: block_mv,
            block_rmva_scratch: block_rmva,
        }),
        info,
    )
}

fn plan_chain(m: &Matrix) -> (NodePlan, Info) {
    // Fold the maximal right spine of `Product` nodes into one chain:
    // Product(f0, Product(f1, … Product(f_{m-1}, f_m))) — the shape
    // `Matrix::product` builds for transformation lineages.
    let mut factors: Vec<Arc<EvalPlan>> = Vec::new();
    let mut cur = m;
    while let Matrix::Product(a, b) = cur {
        factors.push(EvalPlan::cached_child(a));
        cur = b;
    }
    factors.push(EvalPlan::cached_child(cur));
    debug_assert!(factors.len() >= 2);

    let rows: Vec<usize> = factors.iter().map(|p| p.rows).collect();
    let cols = factors.last().map_or(0, |p| p.cols);
    let nprod = factors.len() - 1;
    let buf_len = rows[1..].iter().copied().max().unwrap_or(0);
    let bufs = nprod.min(2);

    let max_mv = factors.iter().map(|p| p.mv_scratch).max().unwrap_or(0);
    let max_rmv = factors.iter().map(|p| p.rmv_scratch).max().unwrap_or(0);
    // `rmatvec_add` pushes the accumulation into the innermost factor; the
    // outer ones run plain `rmatvec`.
    let max_rmva_path = factors[..nprod]
        .iter()
        .map(|p| p.rmv_scratch)
        .max()
        .unwrap_or(0)
        .max(factors[nprod].rmva_scratch);

    let info = Info {
        rows: rows[0],
        cols,
        mv: bufs * buf_len + max_mv,
        rmv: bufs * buf_len + max_rmv,
        rmva: bufs * buf_len + max_rmva_path,
        pool_workers: factors.iter().map(|p| p.pool_workers).max().unwrap_or(0),
        pool_arena: factors.iter().map(|p| p.pool_arena).max().unwrap_or(0),
    };
    (
        NodePlan::Chain(ChainPlan {
            factors,
            rows,
            buf_len,
            bufs,
        }),
        info,
    )
}

fn plan_kron(a: &Matrix, b: &Matrix) -> (NodePlan, Info) {
    let (ap, ai) = plan_node(a);
    let (bp, bi) = plan_node(b);
    let (ma, na) = (ai.rows, ai.cols);
    let (mb, nb) = (bi.rows, bi.cols);
    #[cfg_attr(not(feature = "parallel"), allow(unused_mut))]
    let mut pool_workers = ai.pool_workers.max(bi.pool_workers);
    #[cfg_attr(not(feature = "parallel"), allow(unused_mut))]
    let mut pool_arena = ai.pool_arena.max(bi.pool_arena);

    #[cfg(feature = "parallel")]
    let (par_fwd_rows, par_bwd_rows, par_bwd_cols) = {
        let nt = threads();
        let fwd = if nt.min(na) >= 2 && na * (nb + mb) >= MIN_PAR_WORK {
            na.div_ceil(nt.min(na))
        } else {
            0
        };
        let bwd = if nt.min(ma) >= 2 && ma * (nb + mb) >= MIN_PAR_WORK {
            ma.div_ceil(nt.min(ma))
        } else {
            0
        };
        let bwd_cols = if nt.min(nb) >= 2 && nb * (ma + na) >= MIN_PAR_WORK {
            nb.div_ceil(nt.min(nb))
        } else {
            0
        };
        if fwd > 0 {
            pool_workers = pool_workers.max(na.div_ceil(fwd));
            pool_arena = pool_arena.max(bi.mv);
        }
        if bwd > 0 {
            pool_workers = pool_workers.max(ma.div_ceil(bwd));
            pool_arena = pool_arena.max(bi.rmv);
        }
        if bwd_cols > 0 {
            pool_workers = pool_workers.max(nb.div_ceil(bwd_cols));
            // Stage-2 workers carve an na×w output panel, a gather column,
            // an output column and A's scratch out of one arena.
            pool_arena = pool_arena.max(na * bwd_cols + ma + na + ai.rmv);
        }
        (fwd, bwd, bwd_cols)
    };
    #[cfg(not(feature = "parallel"))]
    let (par_fwd_rows, par_bwd_rows, par_bwd_cols) = (0, 0, 0);

    // Serial stage 2 carves its gather/output column buffers off the
    // scratch arena. Under `simd` those buffers are KRON_PANEL columns
    // wide (the panel-blocked walk in `kron_matvec_plan`); the scalar leg
    // keeps the single-column sizing. Plans and evaluation compile into
    // the same binary, so the selection is consistent by construction.
    #[cfg(feature = "simd")]
    const PANEL: usize = crate::kernels::KRON_PANEL;
    #[cfg(not(feature = "simd"))]
    const PANEL: usize = 1;
    let info = Info {
        rows: ma * mb,
        cols: na * nb,
        mv: na * mb + bi.mv.max(PANEL * (na + ma) + ai.mv),
        rmv: ma * nb + bi.rmv.max(PANEL * (ma + na) + ai.rmv),
        // Kronecker scatter-adds through a dense temporary of the full
        // output width (same policy as the unplanned recursion).
        rmva: na * nb + ma * nb + bi.rmv.max(PANEL * (ma + na) + ai.rmv),
        pool_workers,
        pool_arena,
    };
    (
        NodePlan::Kron(KronPlan {
            a_rows: ma,
            a_cols: na,
            b_rows: mb,
            b_cols: nb,
            a: Box::new(ap),
            b: Box::new(bp),
            par_fwd_rows,
            par_bwd_rows,
            par_bwd_cols,
            b_mv_scratch: bi.mv,
            b_rmv_scratch: bi.rmv,
            a_rmv_scratch: ai.rmv,
        }),
        info,
    )
}

// ---------------------------------------------------------------------
// Identity: fingerprints and shallow signatures for the plan cache
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    // FNV-1a over the value's bytes, 8 at a time.
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// A structural *shape* fingerprint of the whole tree: combinator
/// structure plus every dimension the planner reads — and nothing else.
///
/// Soundness argument: an [`EvalPlan`] is a pure function of (a) the tree
/// of combinator discriminants, (b) the dimensions/scratch sizes of each
/// node, and (c) the process-constant thread count. All of (a) and (b)
/// feed this hash (payload *values* are irrelevant to planning and are
/// deliberately not hashed), so any matrix with the same fingerprint can
/// reuse the same plan — the cache cannot go stale, no matter how
/// matrices are dropped, rebuilt, cloned or moved, which is what makes a
/// *process-wide* cache sound with no invalidation protocol at all. The
/// walk is allocation-free and costs a few ns per node (two orders of
/// magnitude below the planning pass it replaces, see the
/// `replan_every_call` bench entries). A 64-bit collision between
/// resident shapes is negligible (~2⁻⁵⁸ even at thousands of entries).
pub(crate) fn fingerprint(m: &Matrix) -> u64 {
    fn rec(m: &Matrix, mut h: u64) -> u64 {
        h = mix(h, tag(m));
        match m {
            // Explicit payloads hash by their O(1) dimension accessors;
            // Rect2D additionally by its grid-dependent scratch size
            // (two grids can share (queries, domain) but not (rows+1)·
            // (cols+1)).
            Matrix::Dense(d) => mix(mix(h, d.rows() as u64), d.cols() as u64),
            Matrix::Sparse(s) => mix(mix(h, s.rows() as u64), s.cols() as u64),
            Matrix::Diagonal(d) => mix(h, d.len() as u64),
            Matrix::Range(r) => mix(mix(h, r.num_queries() as u64), r.domain() as u64),
            Matrix::Rect2D(r) => mix(
                mix(mix(h, r.num_queries() as u64), r.domain() as u64),
                r.scratch_len() as u64,
            ),
            Matrix::Identity { n }
            | Matrix::Prefix { n }
            | Matrix::Suffix { n }
            | Matrix::Wavelet { n } => mix(h, *n as u64),
            Matrix::Ones { rows, cols } => mix(mix(h, *rows as u64), *cols as u64),
            Matrix::Union(blocks) => {
                h = mix(h, blocks.len() as u64);
                for b in blocks {
                    h = rec(b, h);
                }
                h
            }
            Matrix::Product(a, b) | Matrix::Kronecker(a, b) => rec(b, rec(a, h)),
            // The scale factor does not affect planning, so equal shapes
            // share one plan across different scalings.
            Matrix::Scaled(_, a) => rec(a, h),
            Matrix::Transpose(a) => rec(a, h),
        }
    }
    rec(m, FNV_OFFSET)
}

fn tag(m: &Matrix) -> u64 {
    match m {
        Matrix::Dense(..) => 1,
        Matrix::Sparse(..) => 2,
        Matrix::Diagonal(..) => 3,
        Matrix::Identity { .. } => 4,
        Matrix::Ones { .. } => 5,
        Matrix::Prefix { .. } => 6,
        Matrix::Suffix { .. } => 7,
        Matrix::Wavelet { .. } => 8,
        Matrix::Range(..) => 9,
        Matrix::Rect2D(..) => 10,
        Matrix::Union(..) => 11,
        Matrix::Product(..) => 12,
        Matrix::Kronecker(..) => 13,
        Matrix::Scaled(..) => 14,
        Matrix::Transpose(..) => 15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Dimensions in these tests are unique to this file: the plan cache
    // is process-wide and the test harness runs files' tests concurrently,
    // so shared shapes would make counter assertions racy.

    #[test]
    fn chain_folds_right_spine_and_halves_scratch() {
        // 4 products over n=72: nested recursion would need 4 intermediate
        // buffers; the chain plan ping-pongs two.
        let n = 72;
        let mut m = Matrix::prefix(n);
        for _ in 0..4 {
            m = Matrix::Product(Box::new(Matrix::suffix(n)), Box::new(m));
        }
        let plan = EvalPlan::cached(&m);
        match &plan.root {
            NodePlan::Chain(c) => {
                assert_eq!(c.factors.len(), 5);
                assert_eq!(c.buf_len, n);
                assert_eq!(c.bufs, 2);
            }
            other => panic!("expected chain plan, got {other:?}"),
        }
        assert_eq!(plan.mv_scratch, 2 * n);
        assert!(
            plan.mv_scratch < m.matvec_scratch(),
            "plan should beat the nested recursion"
        );
    }

    #[test]
    fn single_product_matches_unplanned_requirement() {
        let m = Matrix::product(Matrix::prefix(56), Matrix::wavelet(56));
        let plan = EvalPlan::cached(&m);
        assert_eq!(plan.mv_scratch, m.matvec_scratch());
        assert_eq!(plan.rmv_scratch, m.rmatvec_scratch());
    }

    #[test]
    fn union_plan_records_split_offsets() {
        let m = Matrix::vstack(vec![
            Matrix::prefix(24),
            Matrix::total(24),
            Matrix::identity(24),
        ]);
        let plan = EvalPlan::cached(&m);
        match &plan.root {
            NodePlan::Union(u) => assert_eq!(u.block_rows, vec![24, 1, 24]),
            other => panic!("expected union plan, got {other:?}"),
        }
        assert_eq!(plan.rows, 49);
        assert_eq!(plan.cols, 24);
    }

    #[test]
    fn union_spines_share_block_plans() {
        // Two different spines over the same block shapes must hold the
        // very same Arc'd block plans — the per-child sharing that makes
        // MWEM-style round loops cheap.
        let a = Matrix::vstack(vec![Matrix::prefix(368), Matrix::wavelet(368)]);
        let b = Matrix::vstack(vec![
            Matrix::prefix(368),
            Matrix::wavelet(368),
            Matrix::prefix(368),
        ]);
        let pa = EvalPlan::cached(&a);
        let pb = EvalPlan::cached(&b);
        let (NodePlan::Union(ua), NodePlan::Union(ub)) = (&pa.root, &pb.root) else {
            panic!("expected union plans");
        };
        assert!(Arc::ptr_eq(&ua.blocks[0], &ub.blocks[0]));
        assert!(Arc::ptr_eq(&ua.blocks[1], &ub.blocks[1]));
        assert!(Arc::ptr_eq(&ub.blocks[0], &ub.blocks[2]));
    }

    #[test]
    fn fingerprint_stable_across_clones_and_distinct_across_shapes() {
        let a = Matrix::vstack(vec![Matrix::prefix(8), Matrix::wavelet(8)]);
        let b = a.clone();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = Matrix::vstack(vec![Matrix::prefix(8), Matrix::identity(8)]);
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_ne!(
            fingerprint(&Matrix::prefix(8)),
            fingerprint(&Matrix::suffix(8))
        );
    }

    #[test]
    fn build_counter_advances_once_then_never() {
        let m = Matrix::kron(Matrix::prefix(41), Matrix::total(43));
        let before = plan_builds();
        let _ = EvalPlan::cached(&m);
        let after_first = plan_builds();
        assert!(after_first > before, "fresh shape must run a planning pass");
        let _ = EvalPlan::cached(&m);
        // Possible concurrent tests build their own (unique) shapes, so
        // only this shape's contribution is pinned: re-lookup adds none.
        let _ = EvalPlan::cached(&m.clone());
        assert!(plan_builds() >= after_first);
    }

    /// Spine reassembly over cached blocks increments the shared-subplan
    /// counter (the exact "zero planning walks" delta is pinned in the
    /// single-process `plan_sharing` integration suite — global counters
    /// cannot be asserted exactly here while sibling unit tests run
    /// concurrently).
    #[test]
    fn spine_assembly_reuses_cached_blocks() {
        let blocks = vec![Matrix::prefix(937), Matrix::wavelet(937)];
        let _ = EvalPlan::cached(&Matrix::vstack(blocks.clone()));
        let stats = plan_cache::plan_cache_stats();
        // A new spine over the same (now cached) blocks: reassembly only.
        let mut bigger = blocks.clone();
        bigger.push(Matrix::prefix(937));
        let _ = EvalPlan::cached(&Matrix::vstack(bigger));
        assert!(plan_cache::plan_cache_stats().shared_subplans > stats.shared_subplans);
    }
}
