//! Cached evaluation plans for the combinator tree.
//!
//! PR 1's engine removed per-call heap allocations but still re-ran the
//! *planning pass* — the `O(tree)` recursion computing scratch sizes, split
//! offsets and shapes — on every `matvec_into` call. An [`EvalPlan`] runs
//! that pass **once** and records everything evaluation needs:
//!
//! * per-node **split offsets** (block row ranges of a `Union`, factor
//!   shapes of a `Kronecker`, intermediate lengths of a `Product` chain),
//! * the total **scratch requirement** of all three product directions
//!   (`matvec`, `rmatvec`, `rmatvec_add`), so the arena is reserved in full
//!   up front and never grows mid-evaluation,
//! * plan-time **parallel-chunk decisions** for the `parallel` feature
//!   (thread counts and chunk sizes are fixed when the plan is built, which
//!   is what makes threaded evaluation deterministic), and
//! * a **ping-pong buffer assignment** for right-nested `Product` chains:
//!   a chain of `k` products needs only `min(k, 2)` intermediate buffers
//!   instead of the `k` the nested recursion carved, shrinking the working
//!   set of lineage-shaped trees (the shape every kernel-transformed
//!   source drags through inference) by up to `k/2`×.
//!
//! Plans are memoized inside [`crate::Workspace`], keyed by the matrix's
//! address with a structural-fingerprint fallback, so solver inner loops
//! perform **zero planning-pass tree walks** in steady state (see the
//! workspace module docs for the cache's invalidation rules).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Matrix;

/// Number of plans built process-wide (each build is one planning-pass tree
/// walk). Exposed through [`plan_builds`] so tests and benchmarks can prove
/// the steady state performs none.
static PLAN_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total evaluation plans built by this process so far.
///
/// A solver iterating over a fixed system must not move this counter: the
/// plan is built once when its [`crate::Workspace`] first sees the matrix
/// and every later call is a cache hit. Regression tests assert the delta
/// across extra iterations is exactly zero.
pub fn plan_builds() -> u64 {
    PLAN_BUILDS.load(Ordering::Relaxed)
}

/// Work threshold below which parallel evaluation is never chosen (scalar
/// ops; spinning up threads costs more than this much arithmetic).
#[cfg(feature = "parallel")]
const MIN_PAR_WORK: usize = 1 << 14;

#[cfg(feature = "parallel")]
fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// A fully planned evaluation of one matrix: the per-node records plus the
/// arena requirement of every direction.
#[derive(Debug)]
pub(crate) struct EvalPlan {
    /// Per-node plan mirroring the combinator tree.
    pub root: NodePlan,
    /// Cached shape (saves the `O(tree)` `rows()`/`cols()` walks in the
    /// entry-point assertions).
    pub rows: usize,
    /// See `rows`.
    pub cols: usize,
    /// Arena scalars `matvec_into` draws.
    pub mv_scratch: usize,
    /// Arena scalars `rmatvec_into` draws.
    pub rmv_scratch: usize,
    /// Arena scalars `rmatvec_add` draws.
    pub rmva_scratch: usize,
    /// Structural fingerprint of the tree this plan was built for.
    pub fingerprint: u64,
}

impl EvalPlan {
    /// The arena size covering every direction — reserved in full, up
    /// front, by the `*_into` entry points so evaluation never grows the
    /// arena mid-solve.
    pub fn max_scratch(&self) -> usize {
        self.mv_scratch.max(self.rmv_scratch).max(self.rmva_scratch)
    }

    /// Builds the plan for `m` (the one-time planning pass).
    pub fn build(m: &Matrix) -> EvalPlan {
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        let (root, info) = plan_node(m);
        EvalPlan {
            root,
            rows: info.rows,
            cols: info.cols,
            mv_scratch: info.mv,
            rmv_scratch: info.rmv,
            rmva_scratch: info.rmva,
            fingerprint: fingerprint(m),
        }
    }
}

/// The per-node evaluation record. Variants mirror the combinator arms of
/// [`Matrix`]; every leaf (explicit or implicit core matrix) is
/// [`NodePlan::Leaf`] and evaluates through the unplanned serial kernels.
#[derive(Debug)]
pub(crate) enum NodePlan {
    /// Core/explicit matrices: no tree structure below, `O(1)` planning.
    Leaf,
    /// `Union` with per-block row spans and chunk decisions.
    Union(UnionPlan),
    /// A maximal right-nested `Product` chain with ping-pong buffers.
    Chain(ChainPlan),
    /// `Kronecker` with both factor shapes and stage chunk decisions.
    Kron(KronPlan),
    /// `Scaled`; `rows` feeds the `rmatvec_add` temporary.
    Scaled {
        /// Rows of the scaled matrix.
        rows: usize,
        /// Plan of the inner matrix.
        child: Box<NodePlan>,
    },
    /// Lazy transpose; directions swap when descending.
    Transpose {
        /// Rows of the *inner* matrix (length of the `rmatvec_add`
        /// temporary).
        child_rows: usize,
        /// Plan of the inner matrix.
        child: Box<NodePlan>,
    },
}

/// Plan records for one `Union` node.
// The chunk-decision fields are only read by the threaded evaluators.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
#[derive(Debug)]
pub(crate) struct UnionPlan {
    /// Rows of each block, in order (the split offsets of the stacked
    /// output/input vector).
    pub block_rows: Vec<usize>,
    /// Per-block sub-plans.
    pub blocks: Vec<NodePlan>,
    /// Blocks per worker in the forward (matvec) direction; `0` = serial.
    pub par_fwd_chunk: usize,
    /// Blocks per worker in the transpose/scatter direction; `0` = serial.
    pub par_bwd_chunk: usize,
    /// Largest per-block `matvec` scratch need (sizes the per-worker
    /// arenas of the parallel forward path).
    pub block_mv_scratch: usize,
    /// Largest per-block `rmatvec_add` scratch need (sizes the per-worker
    /// arenas of the parallel scatter path).
    pub block_rmva_scratch: usize,
}

/// Plan records for a maximal right-nested `Product` chain
/// `f_0 · f_1 · … · f_m` (`m ≥ 1` products, `m + 1` factors).
#[derive(Debug)]
pub(crate) struct ChainPlan {
    /// Sub-plans of the factors `f_0 ..= f_m`, outermost first.
    pub factors: Vec<NodePlan>,
    /// `rows(f_j)` for every factor. Intermediate `s_j` (the running
    /// product applied to the input) has length `rows[j]` in the forward
    /// direction and `rows[j + 1]` in the transpose direction.
    pub rows: Vec<usize>,
    /// Length of one ping-pong buffer: the largest intermediate.
    pub buf_len: usize,
    /// Number of ping-pong buffers carved (`1` for a single product,
    /// else `2` — the liveness argument: evaluating a chain only ever
    /// needs the previous intermediate and the one being written).
    pub bufs: usize,
}

/// Plan records for one `Kronecker` node `A ⊗ B`.
// The chunk-decision fields are only read by the threaded evaluators.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
#[derive(Debug)]
pub(crate) struct KronPlan {
    /// Shape of `A`.
    pub a_rows: usize,
    /// See `a_rows`.
    pub a_cols: usize,
    /// Shape of `B`.
    pub b_rows: usize,
    /// See `b_rows`.
    pub b_cols: usize,
    /// Sub-plan of `A`.
    pub a: Box<NodePlan>,
    /// Sub-plan of `B`.
    pub b: Box<NodePlan>,
    /// Stage-1 rows per worker, forward direction; `0` = serial.
    pub par_fwd_rows: usize,
    /// Stage-1 rows per worker, transpose direction; `0` = serial.
    pub par_bwd_rows: usize,
    /// Stage-2 output columns per worker, transpose direction; `0` =
    /// serial. (The "Kronecker column-chunk" parallel scatter path.)
    pub par_bwd_cols: usize,
    /// `matvec` scratch of `B` (sizes per-worker arenas in stage 1).
    pub b_mv_scratch: usize,
    /// `rmatvec` scratch of `B`.
    pub b_rmv_scratch: usize,
    /// `rmatvec` scratch of `A` (sizes per-worker arenas in stage 2).
    pub a_rmv_scratch: usize,
}

/// Planning facts about one subtree.
#[derive(Clone, Copy, Debug)]
struct Info {
    rows: usize,
    cols: usize,
    /// `matvec` scratch of the *planned* evaluation (≤ the unplanned
    /// recursion's requirement; chains shrink it).
    mv: usize,
    /// `rmatvec` scratch.
    rmv: usize,
    /// `rmatvec_add` scratch.
    rmva: usize,
}

fn plan_node(m: &Matrix) -> (NodePlan, Info) {
    match m {
        Matrix::Dense(..)
        | Matrix::Sparse(..)
        | Matrix::Diagonal(..)
        | Matrix::Identity { .. }
        | Matrix::Ones { .. }
        | Matrix::Prefix { .. }
        | Matrix::Suffix { .. }
        | Matrix::Wavelet { .. }
        | Matrix::Range(..)
        | Matrix::Rect2D(..) => (
            NodePlan::Leaf,
            Info {
                rows: m.rows(),
                cols: m.cols(),
                mv: m.matvec_scratch(),
                rmv: m.rmatvec_scratch(),
                rmva: m.rmatvec_add_scratch(),
            },
        ),
        Matrix::Union(blocks) => plan_union(blocks),
        Matrix::Product(..) => plan_chain(m),
        Matrix::Kronecker(a, b) => plan_kron(a, b),
        Matrix::Scaled(_, a) => {
            let (child, ci) = plan_node(a);
            let info = Info {
                rmva: ci.rows + ci.rmva,
                ..ci
            };
            (
                NodePlan::Scaled {
                    rows: ci.rows,
                    child: Box::new(child),
                },
                info,
            )
        }
        Matrix::Transpose(a) => {
            let (child, ci) = plan_node(a);
            let info = Info {
                rows: ci.cols,
                cols: ci.rows,
                mv: ci.rmv,
                rmv: ci.mv,
                rmva: ci.rows + ci.mv,
            };
            (
                NodePlan::Transpose {
                    child_rows: ci.rows,
                    child: Box::new(child),
                },
                info,
            )
        }
    }
}

fn plan_union(blocks: &[Matrix]) -> (NodePlan, Info) {
    let built: Vec<(NodePlan, Info)> = blocks.iter().map(plan_node).collect();
    let rows: usize = built.iter().map(|(_, i)| i.rows).sum();
    let cols = built.first().map_or(0, |(_, i)| i.cols);
    let block_mv = built.iter().map(|(_, i)| i.mv).max().unwrap_or(0);
    let block_rmva = built.iter().map(|(_, i)| i.rmva).max().unwrap_or(0);

    #[cfg(feature = "parallel")]
    let (par_fwd_chunk, par_bwd_chunk) = {
        let nthreads = threads().min(blocks.len());
        let fwd = if nthreads >= 2 && rows * 2 + cols >= MIN_PAR_WORK {
            blocks.len().div_ceil(nthreads)
        } else {
            0
        };
        // The scatter direction pays an extra `threads · cols` for the
        // per-worker accumulators and their merge, so it needs the stacked
        // row count itself to clear the threshold.
        let bwd = if nthreads >= 2 && rows >= MIN_PAR_WORK && rows >= cols {
            blocks.len().div_ceil(nthreads)
        } else {
            0
        };
        (fwd, bwd)
    };
    #[cfg(not(feature = "parallel"))]
    let (par_fwd_chunk, par_bwd_chunk) = (0, 0);

    let info = Info {
        rows,
        cols,
        mv: block_mv,
        rmv: block_rmva,
        rmva: block_rmva,
    };
    (
        NodePlan::Union(UnionPlan {
            block_rows: built.iter().map(|(_, i)| i.rows).collect(),
            blocks: built.into_iter().map(|(p, _)| p).collect(),
            par_fwd_chunk,
            par_bwd_chunk,
            block_mv_scratch: block_mv,
            block_rmva_scratch: block_rmva,
        }),
        info,
    )
}

fn plan_chain(m: &Matrix) -> (NodePlan, Info) {
    // Fold the maximal right spine of `Product` nodes into one chain:
    // Product(f0, Product(f1, … Product(f_{m-1}, f_m))) — the shape
    // `Matrix::product` builds for transformation lineages.
    let mut factors = Vec::new();
    let mut cur = m;
    while let Matrix::Product(a, b) = cur {
        factors.push(plan_node(a));
        cur = b;
    }
    factors.push(plan_node(cur));
    debug_assert!(factors.len() >= 2);

    let rows: Vec<usize> = factors.iter().map(|(_, i)| i.rows).collect();
    let cols = factors.last().map_or(0, |(_, i)| i.cols);
    let nprod = factors.len() - 1;
    let buf_len = rows[1..].iter().copied().max().unwrap_or(0);
    let bufs = nprod.min(2);

    let max_mv = factors.iter().map(|(_, i)| i.mv).max().unwrap_or(0);
    let max_rmv = factors.iter().map(|(_, i)| i.rmv).max().unwrap_or(0);
    // `rmatvec_add` pushes the accumulation into the innermost factor; the
    // outer ones run plain `rmatvec`.
    let max_rmva_path = factors[..nprod]
        .iter()
        .map(|(_, i)| i.rmv)
        .max()
        .unwrap_or(0)
        .max(factors[nprod].1.rmva);

    let info = Info {
        rows: rows[0],
        cols,
        mv: bufs * buf_len + max_mv,
        rmv: bufs * buf_len + max_rmv,
        rmva: bufs * buf_len + max_rmva_path,
    };
    (
        NodePlan::Chain(ChainPlan {
            factors: factors.into_iter().map(|(p, _)| p).collect(),
            rows,
            buf_len,
            bufs,
        }),
        info,
    )
}

fn plan_kron(a: &Matrix, b: &Matrix) -> (NodePlan, Info) {
    let (ap, ai) = plan_node(a);
    let (bp, bi) = plan_node(b);
    let (ma, na) = (ai.rows, ai.cols);
    let (mb, nb) = (bi.rows, bi.cols);

    #[cfg(feature = "parallel")]
    let (par_fwd_rows, par_bwd_rows, par_bwd_cols) = {
        let nt = threads();
        let fwd = if nt.min(na) >= 2 && na * (nb + mb) >= MIN_PAR_WORK {
            na.div_ceil(nt.min(na))
        } else {
            0
        };
        let bwd = if nt.min(ma) >= 2 && ma * (nb + mb) >= MIN_PAR_WORK {
            ma.div_ceil(nt.min(ma))
        } else {
            0
        };
        let bwd_cols = if nt.min(nb) >= 2 && nb * (ma + na) >= MIN_PAR_WORK {
            nb.div_ceil(nt.min(nb))
        } else {
            0
        };
        (fwd, bwd, bwd_cols)
    };
    #[cfg(not(feature = "parallel"))]
    let (par_fwd_rows, par_bwd_rows, par_bwd_cols) = (0, 0, 0);

    let info = Info {
        rows: ma * mb,
        cols: na * nb,
        mv: na * mb + bi.mv.max(na + ma + ai.mv),
        rmv: ma * nb + bi.rmv.max(ma + na + ai.rmv),
        // Kronecker scatter-adds through a dense temporary of the full
        // output width (same policy as the unplanned recursion).
        rmva: na * nb + ma * nb + bi.rmv.max(ma + na + ai.rmv),
    };
    (
        NodePlan::Kron(KronPlan {
            a_rows: ma,
            a_cols: na,
            b_rows: mb,
            b_cols: nb,
            a: Box::new(ap),
            b: Box::new(bp),
            par_fwd_rows,
            par_bwd_rows,
            par_bwd_cols,
            b_mv_scratch: bi.mv,
            b_rmv_scratch: bi.rmv,
            a_rmv_scratch: ai.rmv,
        }),
        info,
    )
}

// ---------------------------------------------------------------------
// Identity: fingerprints and shallow signatures for the plan cache
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    // FNV-1a over the value's bytes, 8 at a time.
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// A structural *shape* fingerprint of the whole tree: combinator
/// structure plus every dimension the planner reads — and nothing else.
///
/// Soundness argument: an [`EvalPlan`] is a pure function of (a) the tree
/// of combinator discriminants, (b) the dimensions/scratch sizes of each
/// node, and (c) the process-constant thread count. All of (a) and (b)
/// feed this hash (payload *values* are irrelevant to planning and are
/// deliberately not hashed), so any matrix with the same fingerprint can
/// reuse the same plan — the cache cannot go stale, no matter how
/// matrices are dropped, rebuilt, cloned or moved. The walk is
/// allocation-free and costs a few ns per node (two orders of magnitude
/// below the planning pass it replaces, see the `replan_every_call`
/// bench entries). A 64-bit collision between the ≤8 resident shapes is
/// negligible (~2⁻⁵⁸).
pub(crate) fn fingerprint(m: &Matrix) -> u64 {
    fn rec(m: &Matrix, mut h: u64) -> u64 {
        h = mix(h, tag(m));
        match m {
            // Explicit payloads hash by their O(1) dimension accessors;
            // Rect2D additionally by its grid-dependent scratch size
            // (two grids can share (queries, domain) but not (rows+1)·
            // (cols+1)).
            Matrix::Dense(d) => mix(mix(h, d.rows() as u64), d.cols() as u64),
            Matrix::Sparse(s) => mix(mix(h, s.rows() as u64), s.cols() as u64),
            Matrix::Diagonal(d) => mix(h, d.len() as u64),
            Matrix::Range(r) => mix(mix(h, r.num_queries() as u64), r.domain() as u64),
            Matrix::Rect2D(r) => mix(
                mix(mix(h, r.num_queries() as u64), r.domain() as u64),
                r.scratch_len() as u64,
            ),
            Matrix::Identity { n }
            | Matrix::Prefix { n }
            | Matrix::Suffix { n }
            | Matrix::Wavelet { n } => mix(h, *n as u64),
            Matrix::Ones { rows, cols } => mix(mix(h, *rows as u64), *cols as u64),
            Matrix::Union(blocks) => {
                h = mix(h, blocks.len() as u64);
                for b in blocks {
                    h = rec(b, h);
                }
                h
            }
            Matrix::Product(a, b) | Matrix::Kronecker(a, b) => rec(b, rec(a, h)),
            // The scale factor does not affect planning, so equal shapes
            // share one plan across different scalings.
            Matrix::Scaled(_, a) => rec(a, h),
            Matrix::Transpose(a) => rec(a, h),
        }
    }
    rec(m, FNV_OFFSET)
}

fn tag(m: &Matrix) -> u64 {
    match m {
        Matrix::Dense(..) => 1,
        Matrix::Sparse(..) => 2,
        Matrix::Diagonal(..) => 3,
        Matrix::Identity { .. } => 4,
        Matrix::Ones { .. } => 5,
        Matrix::Prefix { .. } => 6,
        Matrix::Suffix { .. } => 7,
        Matrix::Wavelet { .. } => 8,
        Matrix::Range(..) => 9,
        Matrix::Rect2D(..) => 10,
        Matrix::Union(..) => 11,
        Matrix::Product(..) => 12,
        Matrix::Kronecker(..) => 13,
        Matrix::Scaled(..) => 14,
        Matrix::Transpose(..) => 15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_folds_right_spine_and_halves_scratch() {
        // 4 products over n=8: nested recursion would need 4 intermediate
        // buffers (32 scalars); the chain plan ping-pongs two.
        let n = 8;
        let mut m = Matrix::prefix(n);
        for _ in 0..4 {
            m = Matrix::Product(Box::new(Matrix::suffix(n)), Box::new(m));
        }
        let plan = EvalPlan::build(&m);
        match &plan.root {
            NodePlan::Chain(c) => {
                assert_eq!(c.factors.len(), 5);
                assert_eq!(c.buf_len, n);
                assert_eq!(c.bufs, 2);
            }
            other => panic!("expected chain plan, got {other:?}"),
        }
        assert_eq!(plan.mv_scratch, 2 * n);
        assert!(
            plan.mv_scratch < m.matvec_scratch(),
            "plan should beat the nested recursion"
        );
    }

    #[test]
    fn single_product_matches_unplanned_requirement() {
        let m = Matrix::product(Matrix::prefix(8), Matrix::wavelet(8));
        let plan = EvalPlan::build(&m);
        assert_eq!(plan.mv_scratch, m.matvec_scratch());
        assert_eq!(plan.rmv_scratch, m.rmatvec_scratch());
    }

    #[test]
    fn union_plan_records_split_offsets() {
        let m = Matrix::vstack(vec![
            Matrix::prefix(8),
            Matrix::total(8),
            Matrix::identity(8),
        ]);
        let plan = EvalPlan::build(&m);
        match &plan.root {
            NodePlan::Union(u) => assert_eq!(u.block_rows, vec![8, 1, 8]),
            other => panic!("expected union plan, got {other:?}"),
        }
        assert_eq!(plan.rows, 17);
        assert_eq!(plan.cols, 8);
    }

    #[test]
    fn fingerprint_stable_across_clones_and_distinct_across_shapes() {
        let a = Matrix::vstack(vec![Matrix::prefix(8), Matrix::wavelet(8)]);
        let b = a.clone();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = Matrix::vstack(vec![Matrix::prefix(8), Matrix::identity(8)]);
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_ne!(
            fingerprint(&Matrix::prefix(8)),
            fingerprint(&Matrix::suffix(8))
        );
    }

    #[test]
    fn build_counter_advances() {
        let before = plan_builds();
        let _ = EvalPlan::build(&Matrix::identity(4));
        assert!(plan_builds() > before);
    }
}
