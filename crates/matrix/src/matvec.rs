//! Matrix–vector products (`A·x`) and transpose products (`Aᵀ·y`) — the two
//! primitive methods everything else in EKTELO reduces to (paper §7.3).

use crate::wavelet::{wavelet_matvec, wavelet_rmatvec};
use crate::Matrix;

impl Matrix {
    /// `A · x` as a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.matvec_into(x, &mut out);
        out
    }

    /// `Aᵀ · y` as a fresh vector.
    pub fn rmatvec(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols()];
        self.rmatvec_into(y, &mut out);
        out
    }

    /// `out = A · x`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "matvec: x has wrong length");
        assert_eq!(out.len(), self.rows(), "matvec: out has wrong length");
        match self {
            Matrix::Dense(d) => d.matvec_into(x, out),
            Matrix::Sparse(s) => s.matvec_into(x, out),
            Matrix::Diagonal(d) => {
                for ((o, &di), &xi) in out.iter_mut().zip(d.iter()).zip(x) {
                    *o = di * xi;
                }
            }
            Matrix::Identity { .. } => out.copy_from_slice(x),
            Matrix::Ones { .. } => {
                let s: f64 = x.iter().sum();
                out.fill(s);
            }
            Matrix::Prefix { .. } => {
                let mut acc = 0.0;
                for (o, &xi) in out.iter_mut().zip(x) {
                    acc += xi;
                    *o = acc;
                }
            }
            Matrix::Suffix { .. } => {
                let mut acc = 0.0;
                for (o, &xi) in out.iter_mut().rev().zip(x.iter().rev()) {
                    acc += xi;
                    *o = acc;
                }
            }
            Matrix::Wavelet { .. } => wavelet_matvec(x, out),
            Matrix::Range(r) => r.matvec_into(x, out),
            Matrix::Rect2D(r) => r.matvec_into(x, out),
            Matrix::Union(blocks) => {
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.matvec_into(x, &mut out[offset..offset + m]);
                    offset += m;
                }
            }
            Matrix::Product(a, b) => {
                let t = b.matvec(x);
                a.matvec_into(&t, out);
            }
            Matrix::Kronecker(a, b) => kron_matvec(a, b, x, out),
            Matrix::Scaled(c, a) => {
                a.matvec_into(x, out);
                for o in out.iter_mut() {
                    *o *= c;
                }
            }
            Matrix::Transpose(a) => a.rmatvec_into(x, out),
        }
    }

    /// `out = Aᵀ · y`.
    pub fn rmatvec_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows(), "rmatvec: y has wrong length");
        assert_eq!(out.len(), self.cols(), "rmatvec: out has wrong length");
        match self {
            Matrix::Dense(d) => d.rmatvec_into(y, out),
            Matrix::Sparse(s) => s.rmatvec_into(y, out),
            Matrix::Diagonal(d) => {
                for ((o, &di), &yi) in out.iter_mut().zip(d.iter()).zip(y) {
                    *o = di * yi;
                }
            }
            Matrix::Identity { .. } => out.copy_from_slice(y),
            Matrix::Ones { .. } => {
                let s: f64 = y.iter().sum();
                out.fill(s);
            }
            // Prefixᵀ behaves like Suffix and vice versa.
            Matrix::Prefix { .. } => {
                let mut acc = 0.0;
                for (o, &yi) in out.iter_mut().rev().zip(y.iter().rev()) {
                    acc += yi;
                    *o = acc;
                }
            }
            Matrix::Suffix { .. } => {
                let mut acc = 0.0;
                for (o, &yi) in out.iter_mut().zip(y) {
                    acc += yi;
                    *o = acc;
                }
            }
            Matrix::Wavelet { .. } => wavelet_rmatvec(y, out),
            Matrix::Range(r) => r.rmatvec_into(y, out),
            Matrix::Rect2D(r) => r.rmatvec_into(y, out),
            Matrix::Union(blocks) => {
                // Unionᵀ is a horizontal stack: contributions accumulate.
                // Scatter-adding per block keeps the cost proportional to
                // each block's own work instead of O(blocks · n) — vital
                // for striped plans whose unions have hundreds of blocks.
                out.fill(0.0);
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.rmatvec_add(&y[offset..offset + m], out);
                    offset += m;
                }
            }
            Matrix::Product(a, b) => {
                let t = a.rmatvec(y);
                b.rmatvec_into(&t, out);
            }
            Matrix::Kronecker(a, b) => kron_rmatvec(a, b, y, out),
            Matrix::Scaled(c, a) => {
                a.rmatvec_into(y, out);
                for o in out.iter_mut() {
                    *o *= c;
                }
            }
            Matrix::Transpose(a) => a.matvec_into(y, out),
        }
    }
}

impl Matrix {
    /// `out += Aᵀ · y` — the accumulating variant of
    /// [`Matrix::rmatvec_into`]. Sparse-structure-aware: a CSR block
    /// scatter-adds its `nnz` entries, and products push the accumulation
    /// into their right factor, so a `Union` of narrow blocks costs the sum
    /// of block sizes rather than `O(blocks · n)`.
    pub fn rmatvec_add(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows(), "rmatvec_add: y has wrong length");
        assert_eq!(out.len(), self.cols(), "rmatvec_add: out has wrong length");
        match self {
            Matrix::Sparse(s) => {
                for (i, &yi) in y.iter().enumerate() {
                    if yi == 0.0 {
                        continue;
                    }
                    for (c, v) in s.row_entries(i) {
                        out[c] += yi * v;
                    }
                }
            }
            Matrix::Identity { .. } => {
                for (o, &yi) in out.iter_mut().zip(y) {
                    *o += yi;
                }
            }
            Matrix::Diagonal(d) => {
                for ((o, &di), &yi) in out.iter_mut().zip(d.iter()).zip(y) {
                    *o += di * yi;
                }
            }
            Matrix::Product(a, b) => {
                let t = a.rmatvec(y);
                b.rmatvec_add(&t, out);
            }
            Matrix::Scaled(c, a) => {
                let scaled: Vec<f64> = y.iter().map(|&v| c * v).collect();
                a.rmatvec_add(&scaled, out);
            }
            Matrix::Union(blocks) => {
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.rmatvec_add(&y[offset..offset + m], out);
                    offset += m;
                }
            }
            Matrix::Transpose(a) => {
                // (Aᵀ)ᵀ y = A y, accumulated.
                let t = a.matvec(y);
                for (o, &ti) in out.iter_mut().zip(&t) {
                    *o += ti;
                }
            }
            // Dense blocks and the remaining implicit types touch all of
            // `out` anyway; a temporary costs nothing extra asymptotically.
            _ => {
                let mut tmp = vec![0.0; out.len()];
                self.rmatvec_into(y, &mut tmp);
                for (o, &t) in out.iter_mut().zip(&tmp) {
                    *o += t;
                }
            }
        }
    }
}

/// `out = (A ⊗ B) x` using the vec-trick: reshape x as an `nA×nB` matrix X,
/// compute `T = X·Bᵀ` (apply B to every row), then `out = A·T` columnwise.
/// Cost: `nA·Time(B) + mB·Time(A)` (paper Table 3).
fn kron_matvec(a: &Matrix, b: &Matrix, x: &[f64], out: &mut [f64]) {
    let (ma, na) = a.shape();
    let (mb, nb) = b.shape();
    let mut t = vec![0.0; na * mb];
    for i in 0..na {
        b.matvec_into(&x[i * nb..(i + 1) * nb], &mut t[i * mb..(i + 1) * mb]);
    }
    let mut col = vec![0.0; na];
    let mut ocol = vec![0.0; ma];
    for q in 0..mb {
        for i in 0..na {
            col[i] = t[i * mb + q];
        }
        a.matvec_into(&col, &mut ocol);
        for p in 0..ma {
            out[p * mb + q] = ocol[p];
        }
    }
}

/// `out = (A ⊗ B)ᵀ y = (Aᵀ ⊗ Bᵀ) y`; mirror of [`kron_matvec`].
fn kron_rmatvec(a: &Matrix, b: &Matrix, y: &[f64], out: &mut [f64]) {
    let (ma, na) = a.shape();
    let (mb, nb) = b.shape();
    let mut t = vec![0.0; ma * nb];
    for p in 0..ma {
        b.rmatvec_into(&y[p * mb..(p + 1) * mb], &mut t[p * nb..(p + 1) * nb]);
    }
    let mut col = vec![0.0; ma];
    let mut ocol = vec![0.0; na];
    for j in 0..nb {
        for p in 0..ma {
            col[p] = t[p * nb + j];
        }
        a.rmatvec_into(&col, &mut ocol);
        for i in 0..na {
            out[i * nb + j] = ocol[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x5() -> Vec<f64> {
        vec![1.0, 2.0, 3.0, 4.0, 5.0]
    }

    #[test]
    fn identity_and_diagonal() {
        assert_eq!(Matrix::identity(5).matvec(&x5()), x5());
        let d = Matrix::diagonal(vec![1.0, 0.0, -1.0, 2.0, 0.5]);
        assert_eq!(d.matvec(&x5()), vec![1.0, 0.0, -3.0, 8.0, 2.5]);
        assert_eq!(d.rmatvec(&x5()), vec![1.0, 0.0, -3.0, 8.0, 2.5]);
    }

    #[test]
    fn ones_and_total() {
        assert_eq!(Matrix::ones(3, 5).matvec(&x5()), vec![15.0; 3]);
        assert_eq!(Matrix::total(5).matvec(&x5()), vec![15.0]);
        assert_eq!(Matrix::total(5).rmatvec(&[2.0]), vec![2.0; 5]);
    }

    #[test]
    fn prefix_suffix_are_transposes() {
        let p = Matrix::prefix(5);
        let s = Matrix::suffix(5);
        assert_eq!(p.matvec(&x5()), vec![1.0, 3.0, 6.0, 10.0, 15.0]);
        assert_eq!(s.matvec(&x5()), vec![15.0, 14.0, 12.0, 9.0, 5.0]);
        assert_eq!(p.rmatvec(&x5()), s.matvec(&x5()));
        assert_eq!(s.rmatvec(&x5()), p.matvec(&x5()));
    }

    #[test]
    fn rmatvec_add_matches_rmatvec_for_all_variants() {
        let cases = vec![
            Matrix::identity(5),
            Matrix::prefix(5),
            Matrix::wavelet(5),
            Matrix::diagonal(vec![1.0, -2.0, 0.5, 3.0, 0.0]),
            Matrix::select_rows(5, &[3, 1]),
            Matrix::scaled(2.0, Matrix::select_rows(5, &[0, 4])),
            Matrix::product(Matrix::total(3), Matrix::select_rows(5, &[0, 2, 4])),
            Matrix::vstack(vec![Matrix::identity(5), Matrix::total(5)]),
            Matrix::prefix(5).transpose().transpose(),
            Matrix::Transpose(Box::new(Matrix::wavelet(5))),
        ];
        for m in cases {
            let y: Vec<f64> = (0..m.rows()).map(|i| i as f64 - 1.5).collect();
            let mut acc = vec![1.0; m.cols()];
            m.rmatvec_add(&y, &mut acc);
            let direct = m.rmatvec(&y);
            for (a, d) in acc.iter().zip(&direct) {
                assert!((a - (d + 1.0)).abs() < 1e-12, "mismatch for {m:?}");
            }
        }
    }

    #[test]
    fn union_stacks_and_accumulates() {
        let u = Matrix::vstack(vec![Matrix::total(5), Matrix::identity(5)]);
        assert_eq!(u.matvec(&x5()), vec![15.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let y = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        // Unionᵀ y = Totalᵀ·1 + Iᵀ·rest = [1+1, ...]
        assert_eq!(u.rmatvec(&y), vec![2.0; 5]);
    }

    #[test]
    fn product_composes() {
        // Total · Prefix = [n, n-1, ..., 1] as a row
        let p = Matrix::product(Matrix::total(5), Matrix::prefix(5));
        assert_eq!(p.matvec(&x5()), vec![1.0 * 5.0 + 2.0 * 4.0 + 3.0 * 3.0 + 4.0 * 2.0 + 5.0]);
    }

    #[test]
    fn kron_matches_materialized() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, -1.0], vec![3.0, 1.0]]);
        let b = Matrix::from_rows(vec![vec![1.0, 0.0, 2.0], vec![-1.0, 1.0, 0.5]]);
        let k = Matrix::kron(a.clone(), b.clone());
        let kd = k.to_dense();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut expect = vec![0.0; 6];
        kd.matvec_into(&x, &mut expect);
        assert_eq!(k.matvec(&x), expect);

        let y: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3).collect();
        let mut expect_t = vec![0.0; 6];
        kd.rmatvec_into(&y, &mut expect_t);
        let got = k.rmatvec(&y);
        for (g, e) in got.iter().zip(&expect_t) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_and_transpose() {
        let m = Matrix::scaled(2.0, Matrix::prefix(5));
        assert_eq!(m.matvec(&x5()), vec![2.0, 6.0, 12.0, 20.0, 30.0]);
        let t = Matrix::Transpose(Box::new(Matrix::prefix(5)));
        assert_eq!(t.matvec(&x5()), Matrix::suffix(5).matvec(&x5()));
    }

    #[test]
    fn range_variant_dispatch() {
        let w = Matrix::range_queries(5, vec![(0, 5), (2, 3)]);
        assert_eq!(w.matvec(&x5()), vec![15.0, 3.0]);
    }

    #[test]
    fn three_way_kron_marginal() {
        // W13 = I ⊗ Total ⊗ I over a 2×3×2 domain (paper Example 7.5).
        let w = Matrix::kron_list(vec![
            Matrix::identity(2),
            Matrix::total(3),
            Matrix::identity(2),
        ]);
        assert_eq!(w.shape(), (4, 12));
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        // cell index = a*6 + b*2 + c; marginal over b.
        let mut expect = vec![0.0; 4];
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    expect[a * 2 + c] += x[a * 6 + b * 2 + c];
                }
            }
        }
        assert_eq!(w.matvec(&x), expect);
    }
}
