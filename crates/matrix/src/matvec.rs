//! Matrix–vector products (`A·x`) and transpose products (`Aᵀ·y`) — the two
//! primitive methods everything else in EKTELO reduces to (paper §7.3).
//!
//! The engine is allocation-free: the public `*_into` entry points carve all
//! transient storage out of a caller-provided [`Workspace`] arena (sized by
//! the planning pass in [`crate::workspace`]) and the recursion over the
//! combinator tree splits disjoint sub-slices off that arena instead of
//! allocating per node. [`Matrix::matvec`] / [`Matrix::rmatvec`] remain as
//! thin allocating wrappers with unchanged semantics.
//!
//! With the `parallel` feature enabled, large `Union` products evaluate
//! their independent blocks on multiple threads and Kronecker products
//! apply the right factor to row-chunks in parallel (via
//! `std::thread::scope`; the offline build environment has no rayon).
//! The parallel paths allocate per-thread scratch and are used only above
//! a size threshold; the serial paths stay allocation-free.

use crate::wavelet::{wavelet_matvec, wavelet_rmatvec};
use crate::{Matrix, Workspace};

impl Matrix {
    /// `A · x` as a fresh vector (allocating convenience wrapper).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.matvec_into(x, &mut out, &mut Workspace::new());
        out
    }

    /// `Aᵀ · y` as a fresh vector (allocating convenience wrapper).
    pub fn rmatvec(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols()];
        self.rmatvec_into(y, &mut out, &mut Workspace::new());
        out
    }

    /// `out = A · x`, drawing all transient storage from `ws`.
    ///
    /// After `ws` has grown to this matrix's requirement (at most one
    /// allocation, typically done up front via [`Workspace::for_matrix`]),
    /// repeated calls perform zero heap allocations.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64], ws: &mut Workspace) {
        assert_eq!(x.len(), self.cols(), "matvec: x has wrong length");
        assert_eq!(out.len(), self.rows(), "matvec: out has wrong length");
        let scratch = ws.slice(self.matvec_scratch());
        self.matvec_rec(x, out, scratch);
    }

    /// `out = Aᵀ · y`, drawing all transient storage from `ws`.
    pub fn rmatvec_into(&self, y: &[f64], out: &mut [f64], ws: &mut Workspace) {
        assert_eq!(y.len(), self.rows(), "rmatvec: y has wrong length");
        assert_eq!(out.len(), self.cols(), "rmatvec: out has wrong length");
        let scratch = ws.slice(self.rmatvec_scratch());
        self.rmatvec_rec(y, out, scratch);
    }

    /// `out += Aᵀ · y` — the accumulating variant of
    /// [`Matrix::rmatvec_into`]. Sparse-structure-aware: a CSR block
    /// scatter-adds its `nnz` entries, and products push the accumulation
    /// into their right factor, so a `Union` of narrow blocks costs the sum
    /// of block sizes rather than `O(blocks · n)`.
    pub fn rmatvec_add(&self, y: &[f64], out: &mut [f64], ws: &mut Workspace) {
        assert_eq!(y.len(), self.rows(), "rmatvec_add: y has wrong length");
        assert_eq!(out.len(), self.cols(), "rmatvec_add: out has wrong length");
        let scratch = ws.slice(self.rmatvec_add_scratch());
        self.rmatvec_add_rec(y, out, scratch);
    }

    /// Recursive worker for `out = A·x`. `scratch` must hold at least
    /// [`Matrix::matvec_scratch`] scalars; nodes carve what they need off
    /// the front and pass the rest down.
    pub(crate) fn matvec_rec(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        match self {
            Matrix::Dense(d) => d.matvec_into(x, out),
            Matrix::Sparse(s) => s.matvec_into(x, out),
            Matrix::Diagonal(d) => {
                for ((o, &di), &xi) in out.iter_mut().zip(d.iter()).zip(x) {
                    *o = di * xi;
                }
            }
            Matrix::Identity { .. } => out.copy_from_slice(x),
            Matrix::Ones { .. } => {
                let s: f64 = x.iter().sum();
                out.fill(s);
            }
            Matrix::Prefix { .. } => {
                let mut acc = 0.0;
                for (o, &xi) in out.iter_mut().zip(x) {
                    acc += xi;
                    *o = acc;
                }
            }
            Matrix::Suffix { .. } => {
                let mut acc = 0.0;
                for (o, &xi) in out.iter_mut().rev().zip(x.iter().rev()) {
                    acc += xi;
                    *o = acc;
                }
            }
            Matrix::Wavelet { .. } => wavelet_matvec(x, out),
            Matrix::Range(r) => r.matvec_rec(x, out, scratch),
            Matrix::Rect2D(r) => r.matvec_rec(x, out, scratch),
            Matrix::Union(blocks) => {
                #[cfg(feature = "parallel")]
                if parallel::union_matvec(blocks, x, out) {
                    return;
                }
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.matvec_rec(x, &mut out[offset..offset + m], scratch);
                    offset += m;
                }
            }
            Matrix::Product(a, b) => {
                let (t, rest) = scratch.split_at_mut(b.rows());
                b.matvec_rec(x, t, rest);
                a.matvec_rec(t, out, rest);
            }
            Matrix::Kronecker(a, b) => kron_matvec(a, b, x, out, scratch),
            Matrix::Scaled(c, a) => {
                a.matvec_rec(x, out, scratch);
                for o in out.iter_mut() {
                    *o *= c;
                }
            }
            Matrix::Transpose(a) => a.rmatvec_rec(x, out, scratch),
        }
    }

    /// Recursive worker for `out = Aᵀ·y`; `scratch` must hold at least
    /// [`Matrix::rmatvec_scratch`] scalars.
    pub(crate) fn rmatvec_rec(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        match self {
            Matrix::Dense(d) => d.rmatvec_into(y, out),
            Matrix::Sparse(s) => s.rmatvec_into(y, out),
            Matrix::Diagonal(d) => {
                for ((o, &di), &yi) in out.iter_mut().zip(d.iter()).zip(y) {
                    *o = di * yi;
                }
            }
            Matrix::Identity { .. } => out.copy_from_slice(y),
            Matrix::Ones { .. } => {
                let s: f64 = y.iter().sum();
                out.fill(s);
            }
            // Prefixᵀ behaves like Suffix and vice versa.
            Matrix::Prefix { .. } => {
                let mut acc = 0.0;
                for (o, &yi) in out.iter_mut().rev().zip(y.iter().rev()) {
                    acc += yi;
                    *o = acc;
                }
            }
            Matrix::Suffix { .. } => {
                let mut acc = 0.0;
                for (o, &yi) in out.iter_mut().zip(y) {
                    acc += yi;
                    *o = acc;
                }
            }
            Matrix::Wavelet { .. } => wavelet_rmatvec(y, out),
            Matrix::Range(r) => r.rmatvec_rec(y, out, scratch),
            Matrix::Rect2D(r) => r.rmatvec_rec(y, out, scratch),
            Matrix::Union(blocks) => {
                // Unionᵀ is a horizontal stack: contributions accumulate.
                // Scatter-adding per block keeps the cost proportional to
                // each block's own work instead of O(blocks · n) — vital
                // for striped plans whose unions have hundreds of blocks.
                out.fill(0.0);
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.rmatvec_add_rec(&y[offset..offset + m], out, scratch);
                    offset += m;
                }
            }
            Matrix::Product(a, b) => {
                let (t, rest) = scratch.split_at_mut(b.rows());
                a.rmatvec_rec(y, t, rest);
                b.rmatvec_rec(t, out, rest);
            }
            Matrix::Kronecker(a, b) => kron_rmatvec(a, b, y, out, scratch),
            Matrix::Scaled(c, a) => {
                a.rmatvec_rec(y, out, scratch);
                for o in out.iter_mut() {
                    *o *= c;
                }
            }
            Matrix::Transpose(a) => a.matvec_rec(y, out, scratch),
        }
    }

    /// Recursive worker for `out += Aᵀ·y`; `scratch` must hold at least
    /// [`Matrix::rmatvec_add_scratch`] scalars.
    fn rmatvec_add_rec(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        match self {
            Matrix::Sparse(s) => {
                for (i, &yi) in y.iter().enumerate() {
                    if yi == 0.0 {
                        continue;
                    }
                    for (c, v) in s.row_entries(i) {
                        out[c] += yi * v;
                    }
                }
            }
            Matrix::Identity { .. } => {
                for (o, &yi) in out.iter_mut().zip(y) {
                    *o += yi;
                }
            }
            Matrix::Diagonal(d) => {
                for ((o, &di), &yi) in out.iter_mut().zip(d.iter()).zip(y) {
                    *o += di * yi;
                }
            }
            Matrix::Product(a, b) => {
                let (t, rest) = scratch.split_at_mut(b.rows());
                a.rmatvec_rec(y, t, rest);
                b.rmatvec_add_rec(t, out, rest);
            }
            Matrix::Scaled(c, a) => {
                let (scaled, rest) = scratch.split_at_mut(y.len());
                for (s, &yi) in scaled.iter_mut().zip(y) {
                    *s = c * yi;
                }
                a.rmatvec_add_rec(scaled, out, rest);
            }
            Matrix::Union(blocks) => {
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.rmatvec_add_rec(&y[offset..offset + m], out, scratch);
                    offset += m;
                }
            }
            Matrix::Transpose(a) => {
                // (Aᵀ)ᵀ y = A y, accumulated.
                let (t, rest) = scratch.split_at_mut(a.rows());
                a.matvec_rec(y, t, rest);
                for (o, &ti) in out.iter_mut().zip(t.iter()) {
                    *o += ti;
                }
            }
            // Dense blocks and the remaining implicit types touch all of
            // `out` anyway; a dense temporary costs nothing extra
            // asymptotically.
            _ => {
                let (tmp, rest) = scratch.split_at_mut(out.len());
                self.rmatvec_rec(y, tmp, rest);
                for (o, &t) in out.iter_mut().zip(tmp.iter()) {
                    *o += t;
                }
            }
        }
    }
}

/// `out = (A ⊗ B) x` using the vec-trick: reshape x as an `nA×nB` matrix X,
/// compute `T = X·Bᵀ` (apply B to every row), then `out = A·T` columnwise.
/// Cost: `nA·Time(B) + mB·Time(A)` (paper Table 3). All temporaries come
/// out of `scratch`.
fn kron_matvec(a: &Matrix, b: &Matrix, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
    let (ma, na) = a.shape();
    let (mb, nb) = b.shape();
    let (t, rest) = scratch.split_at_mut(na * mb);
    #[cfg(feature = "parallel")]
    let stage1_done = parallel::kron_apply_rows(b, x, t, na, nb, mb);
    #[cfg(not(feature = "parallel"))]
    let stage1_done = false;
    if !stage1_done {
        for i in 0..na {
            b.matvec_rec(&x[i * nb..(i + 1) * nb], &mut t[i * mb..(i + 1) * mb], rest);
        }
    }
    let (col, rest) = rest.split_at_mut(na);
    let (ocol, rest) = rest.split_at_mut(ma);
    for q in 0..mb {
        for i in 0..na {
            col[i] = t[i * mb + q];
        }
        a.matvec_rec(col, ocol, rest);
        for p in 0..ma {
            out[p * mb + q] = ocol[p];
        }
    }
}

/// `out = (A ⊗ B)ᵀ y = (Aᵀ ⊗ Bᵀ) y`; mirror of [`kron_matvec`].
fn kron_rmatvec(a: &Matrix, b: &Matrix, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
    let (ma, na) = a.shape();
    let (mb, nb) = b.shape();
    let (t, rest) = scratch.split_at_mut(ma * nb);
    #[cfg(feature = "parallel")]
    let stage1_done = parallel::kron_apply_rows_t(b, y, t, ma, mb, nb);
    #[cfg(not(feature = "parallel"))]
    let stage1_done = false;
    if !stage1_done {
        for p in 0..ma {
            b.rmatvec_rec(&y[p * mb..(p + 1) * mb], &mut t[p * nb..(p + 1) * nb], rest);
        }
    }
    let (col, rest) = rest.split_at_mut(ma);
    let (ocol, rest) = rest.split_at_mut(na);
    for j in 0..nb {
        for p in 0..ma {
            col[p] = t[p * nb + j];
        }
        a.rmatvec_rec(col, ocol, rest);
        for i in 0..na {
            out[i * nb + j] = ocol[i];
        }
    }
}

/// Multi-threaded evaluation of independent sub-products, behind the
/// `parallel` feature. Built on `std::thread::scope` (the offline build
/// environment cannot vendor rayon); threads allocate their own scratch, so
/// these paths trade strict allocation-freedom for parallel speedup and are
/// only taken above a work threshold.
#[cfg(feature = "parallel")]
mod parallel {
    use crate::Matrix;

    /// Don't spin up threads for products cheaper than this many scalar ops.
    const MIN_PAR_WORK: usize = 1 << 14;

    fn threads() -> usize {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }

    /// `Union` matvec with one thread per chunk of blocks. Returns `false`
    /// (caller falls back to serial) when below threshold.
    pub(super) fn union_matvec(blocks: &[Matrix], x: &[f64], out: &mut [f64]) -> bool {
        let nthreads = threads().min(blocks.len());
        if nthreads < 2 || out.len() * 2 + x.len() < MIN_PAR_WORK {
            return false;
        }
        // Split `out` into per-block slices up front.
        let mut jobs: Vec<(&Matrix, &mut [f64])> = Vec::with_capacity(blocks.len());
        let mut rem = out;
        for b in blocks {
            let (head, tail) = rem.split_at_mut(b.rows());
            jobs.push((b, head));
            rem = tail;
        }
        // Round-robin chunks keep per-thread work balanced enough for the
        // homogeneous blocks striped plans produce.
        let chunk = jobs.len().div_ceil(nthreads);
        std::thread::scope(|s| {
            for group in jobs.chunks_mut(chunk) {
                s.spawn(move || {
                    let need = group
                        .iter()
                        .map(|(b, _)| b.matvec_scratch())
                        .max()
                        .unwrap_or(0);
                    let mut scratch = vec![0.0; need];
                    for (b, o) in group {
                        b.matvec_rec(x, o, &mut scratch);
                    }
                });
            }
        });
        true
    }

    /// Stage 1 of the Kronecker vec-trick — applying `b` to each of the
    /// `na` rows of the reshaped input — parallelized over row chunks.
    pub(super) fn kron_apply_rows(
        b: &Matrix,
        x: &[f64],
        t: &mut [f64],
        na: usize,
        nb: usize,
        mb: usize,
    ) -> bool {
        let nthreads = threads().min(na);
        if nthreads < 2 || na * (nb + mb) < MIN_PAR_WORK {
            return false;
        }
        let rows_per = na.div_ceil(nthreads);
        std::thread::scope(|s| {
            for (c, tchunk) in t.chunks_mut(rows_per * mb).enumerate() {
                let x = &x[c * rows_per * nb..];
                s.spawn(move || {
                    let mut scratch = vec![0.0; b.matvec_scratch()];
                    for (i, trow) in tchunk.chunks_mut(mb).enumerate() {
                        b.matvec_rec(&x[i * nb..(i + 1) * nb], trow, &mut scratch);
                    }
                });
            }
        });
        true
    }

    /// Transpose-direction mirror of [`kron_apply_rows`].
    pub(super) fn kron_apply_rows_t(
        b: &Matrix,
        y: &[f64],
        t: &mut [f64],
        ma: usize,
        mb: usize,
        nb: usize,
    ) -> bool {
        let nthreads = threads().min(ma);
        if nthreads < 2 || ma * (nb + mb) < MIN_PAR_WORK {
            return false;
        }
        let rows_per = ma.div_ceil(nthreads);
        std::thread::scope(|s| {
            for (c, tchunk) in t.chunks_mut(rows_per * nb).enumerate() {
                let y = &y[c * rows_per * mb..];
                s.spawn(move || {
                    let mut scratch = vec![0.0; b.rmatvec_scratch()];
                    for (p, trow) in tchunk.chunks_mut(nb).enumerate() {
                        b.rmatvec_rec(&y[p * mb..(p + 1) * mb], trow, &mut scratch);
                    }
                });
            }
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x5() -> Vec<f64> {
        vec![1.0, 2.0, 3.0, 4.0, 5.0]
    }

    #[test]
    fn identity_and_diagonal() {
        assert_eq!(Matrix::identity(5).matvec(&x5()), x5());
        let d = Matrix::diagonal(vec![1.0, 0.0, -1.0, 2.0, 0.5]);
        assert_eq!(d.matvec(&x5()), vec![1.0, 0.0, -3.0, 8.0, 2.5]);
        assert_eq!(d.rmatvec(&x5()), vec![1.0, 0.0, -3.0, 8.0, 2.5]);
    }

    #[test]
    fn ones_and_total() {
        assert_eq!(Matrix::ones(3, 5).matvec(&x5()), vec![15.0; 3]);
        assert_eq!(Matrix::total(5).matvec(&x5()), vec![15.0]);
        assert_eq!(Matrix::total(5).rmatvec(&[2.0]), vec![2.0; 5]);
    }

    #[test]
    fn prefix_suffix_are_transposes() {
        let p = Matrix::prefix(5);
        let s = Matrix::suffix(5);
        assert_eq!(p.matvec(&x5()), vec![1.0, 3.0, 6.0, 10.0, 15.0]);
        assert_eq!(s.matvec(&x5()), vec![15.0, 14.0, 12.0, 9.0, 5.0]);
        assert_eq!(p.rmatvec(&x5()), s.matvec(&x5()));
        assert_eq!(s.rmatvec(&x5()), p.matvec(&x5()));
    }

    #[test]
    fn rmatvec_add_matches_rmatvec_for_all_variants() {
        let cases = vec![
            Matrix::identity(5),
            Matrix::prefix(5),
            Matrix::wavelet(5),
            Matrix::diagonal(vec![1.0, -2.0, 0.5, 3.0, 0.0]),
            Matrix::select_rows(5, &[3, 1]),
            Matrix::scaled(2.0, Matrix::select_rows(5, &[0, 4])),
            Matrix::product(Matrix::total(3), Matrix::select_rows(5, &[0, 2, 4])),
            Matrix::vstack(vec![Matrix::identity(5), Matrix::total(5)]),
            Matrix::prefix(5).transpose().transpose(),
            Matrix::Transpose(Box::new(Matrix::wavelet(5))),
        ];
        for m in cases {
            let y: Vec<f64> = (0..m.rows()).map(|i| i as f64 - 1.5).collect();
            let mut acc = vec![1.0; m.cols()];
            let mut ws = Workspace::new();
            m.rmatvec_add(&y, &mut acc, &mut ws);
            let direct = m.rmatvec(&y);
            for (a, d) in acc.iter().zip(&direct) {
                assert!((a - (d + 1.0)).abs() < 1e-12, "mismatch for {m:?}");
            }
        }
    }

    #[test]
    fn union_stacks_and_accumulates() {
        let u = Matrix::vstack(vec![Matrix::total(5), Matrix::identity(5)]);
        assert_eq!(u.matvec(&x5()), vec![15.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let y = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        // Unionᵀ y = Totalᵀ·1 + Iᵀ·rest = [1+1, ...]
        assert_eq!(u.rmatvec(&y), vec![2.0; 5]);
    }

    #[test]
    fn product_composes() {
        // Total · Prefix = [n, n-1, ..., 1] as a row
        let p = Matrix::product(Matrix::total(5), Matrix::prefix(5));
        assert_eq!(
            p.matvec(&x5()),
            vec![1.0 * 5.0 + 2.0 * 4.0 + 3.0 * 3.0 + 4.0 * 2.0 + 5.0]
        );
    }

    #[test]
    fn kron_matches_materialized() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, -1.0], vec![3.0, 1.0]]);
        let b = Matrix::from_rows(vec![vec![1.0, 0.0, 2.0], vec![-1.0, 1.0, 0.5]]);
        let k = Matrix::kron(a.clone(), b.clone());
        let kd = k.to_dense();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut expect = vec![0.0; 6];
        kd.matvec_into(&x, &mut expect);
        assert_eq!(k.matvec(&x), expect);

        let y: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3).collect();
        let mut expect_t = vec![0.0; 6];
        kd.rmatvec_into(&y, &mut expect_t);
        let got = k.rmatvec(&y);
        for (g, e) in got.iter().zip(&expect_t) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_and_transpose() {
        let m = Matrix::scaled(2.0, Matrix::prefix(5));
        assert_eq!(m.matvec(&x5()), vec![2.0, 6.0, 12.0, 20.0, 30.0]);
        let t = Matrix::Transpose(Box::new(Matrix::prefix(5)));
        assert_eq!(t.matvec(&x5()), Matrix::suffix(5).matvec(&x5()));
    }

    #[test]
    fn range_variant_dispatch() {
        let w = Matrix::range_queries(5, vec![(0, 5), (2, 3)]);
        assert_eq!(w.matvec(&x5()), vec![15.0, 3.0]);
    }

    #[test]
    fn three_way_kron_marginal() {
        // W13 = I ⊗ Total ⊗ I over a 2×3×2 domain (paper Example 7.5).
        let w = Matrix::kron_list(vec![
            Matrix::identity(2),
            Matrix::total(3),
            Matrix::identity(2),
        ]);
        assert_eq!(w.shape(), (4, 12));
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        // cell index = a*6 + b*2 + c; marginal over b.
        let mut expect = vec![0.0; 4];
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    expect[a * 2 + c] += x[a * 6 + b * 2 + c];
                }
            }
        }
        assert_eq!(w.matvec(&x), expect);
    }

    /// The parallel paths only engage above `MIN_PAR_WORK`; these cases are
    /// sized past the threshold so `--features parallel` actually executes
    /// the threaded chunking (below-threshold per-block evaluation stays
    /// serial and serves as the reference).
    #[test]
    fn large_union_matches_per_block_evaluation() {
        let n = 1usize << 13;
        let blocks = vec![
            Matrix::wavelet(n),
            Matrix::prefix(n),
            Matrix::scaled(0.5, Matrix::suffix(n)),
            Matrix::product(Matrix::prefix(n), Matrix::wavelet(n)),
        ];
        let u = Matrix::vstack(blocks.clone());
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        let got = u.matvec(&x);
        let expect: Vec<f64> = blocks.iter().flat_map(|b| b.matvec(&x)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn large_kron_matches_materialized() {
        // na*(nb+mb) = 128*256 exceeds the parallel threshold in both
        // directions.
        let a = Matrix::prefix(128);
        let b = Matrix::wavelet(128);
        let k = Matrix::kron(a, b);
        let sparse = Matrix::sparse(k.to_sparse());
        let x: Vec<f64> = (0..k.cols())
            .map(|i| ((i * 31) % 17) as f64 - 8.0)
            .collect();
        let got = k.matvec(&x);
        let expect = sparse.matvec(&x);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "kron matvec diverged");
        }
        let y: Vec<f64> = (0..k.rows())
            .map(|i| ((i * 7) % 23) as f64 - 11.0)
            .collect();
        let got_t = k.rmatvec(&y);
        let expect_t = sparse.rmatvec(&y);
        for (g, e) in got_t.iter().zip(&expect_t) {
            assert!((g - e).abs() < 1e-9, "kron rmatvec diverged");
        }
    }

    #[test]
    fn shared_workspace_reused_across_directions() {
        let m = Matrix::vstack(vec![
            Matrix::product(Matrix::prefix(6), Matrix::wavelet(6)),
            Matrix::kron(Matrix::total(2), Matrix::prefix(3)),
        ]);
        let mut ws = Workspace::for_matrix(&m);
        let cap_after_plan = ws.capacity();
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let mut out = vec![0.0; m.rows()];
        let mut back = vec![0.0; m.cols()];
        for _ in 0..3 {
            m.matvec_into(&x, &mut out, &mut ws);
            m.rmatvec_into(&out, &mut back, &mut ws);
        }
        // The planning pass sized the arena once; evaluation never grew it.
        assert_eq!(ws.capacity(), cap_after_plan);
        assert_eq!(out, m.matvec(&x));
        assert_eq!(back, m.rmatvec(&out));
    }
}
