//! Matrix–vector products (`A·x`) and transpose products (`Aᵀ·y`) — the two
//! primitive methods everything else in EKTELO reduces to (paper §7.3).
//!
//! The engine is allocation-free **and** planning-free in steady state: the
//! public `*_into` entry points fetch a shared [`crate::plan::EvalPlan`]
//! (workspace fast path → process-wide plan cache), reserve the
//! direction's full scratch requirement up front, and then recurse over the
//! combinator tree guided by the plan's per-node records — no
//! `rows()`/scratch recomputation, no arena growth, no allocator traffic.
//! Right-nested `Product` chains (transformation lineages) evaluate through
//! two ping-pong buffers instead of one intermediate per product, shrinking
//! the hot working set. [`Matrix::matvec`] / [`Matrix::rmatvec`] remain as
//! thin allocating wrappers with unchanged semantics.
//!
//! With the `parallel` feature enabled, plan-time chunk decisions drive
//! multi-threaded evaluation in **both** directions: `Union` blocks and
//! Kronecker row-chunks in the forward direction; `Union` scatter-adds
//! (per-worker accumulators merged in fixed chunk order at the barrier)
//! and Kronecker column-chunks in the transpose direction. Chunk counts
//! are fixed when the plan is built, so threaded results are deterministic
//! run-to-run. Chunks execute on the persistent [`crate::pool`] executor
//! (parked workers, preallocated job slots; the offline build environment
//! has no rayon) and borrow their scratch — and, in the scatter
//! direction, their private accumulators — from the workspace's per-worker
//! [`crate::workspace::ArenaPool`] (sized at plan time), so the warm
//! threaded paths perform zero allocations *and* zero thread creation.

use crate::kernels;
use crate::plan::{ChainPlan, KronPlan, NodePlan};
use crate::wavelet::{wavelet_matvec, wavelet_rmatvec};
use crate::workspace::ArenaPool;
use crate::{Matrix, Workspace};

impl Matrix {
    /// `A · x` as a fresh vector (allocating convenience wrapper). Each
    /// call plans from scratch and discards the plan; loops should hold a
    /// [`Workspace`] and call [`Matrix::matvec_into`] instead.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.matvec_into(x, &mut out, &mut Workspace::new());
        out
    }

    /// `Aᵀ · y` as a fresh vector (allocating convenience wrapper). Same
    /// per-call planning cost as [`Matrix::matvec`]; loops should reuse a
    /// [`Workspace`] via [`Matrix::rmatvec_into`].
    pub fn rmatvec(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols()];
        self.rmatvec_into(y, &mut out, &mut Workspace::new());
        out
    }

    /// `out = A · x`, drawing all transient storage from `ws`.
    ///
    /// The first call plans the evaluation and reserves the arena (and the
    /// threaded worker pool) for every product direction at once; repeated
    /// calls are pure computation — zero heap allocations *and* zero
    /// planning-pass tree walks.
    ///
    /// WARM: steady-state evaluation entry point — the transitive call
    /// closure past the planning/reservation boundary must not allocate
    /// (xlint `warm-path-alloc`, backed by the counting-allocator suite).
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64], ws: &mut Workspace) {
        // xlint: allow(warm-path-alloc, reason = "planning boundary: plan_for allocates only on the first call per matrix; repeat calls take the memoized fast path — the steady state the counting-allocator suite gates")
        let plan = ws.plan_for(self);
        assert_eq!(x.len(), plan.cols, "matvec: x has wrong length");
        assert_eq!(out.len(), plan.rows, "matvec: out has wrong length");
        // The direction's full requirement, reserved before evaluation
        // starts — the arena never grows mid-evaluation. (Only this
        // direction: a matvec-only workload must not pay for the O(cols)
        // scatter temporary; `Workspace::for_matrix` pre-sizes all three
        // directions for solvers that alternate.)
        // xlint: allow(warm-path-alloc, reason = "arena reservation boundary: grows the workspace arena only up to the planned requirement on first use; steady-state calls are a bounds check")
        ws.reserve(plan.mv_scratch);
        let (scratch, pool) = ws.carve(plan.mv_scratch, plan.pool_workers, plan.pool_arena);
        self.matvec_plan(&plan.root, x, out, scratch, pool);
    }

    /// `out = Aᵀ · y`, drawing all transient storage from `ws`.
    ///
    /// WARM: steady-state evaluation entry point (see
    /// [`Matrix::matvec_into`]).
    pub fn rmatvec_into(&self, y: &[f64], out: &mut [f64], ws: &mut Workspace) {
        // xlint: allow(warm-path-alloc, reason = "planning boundary: plan_for allocates only on the first call per matrix; repeat calls take the memoized fast path — the steady state the counting-allocator suite gates")
        let plan = ws.plan_for(self);
        assert_eq!(y.len(), plan.rows, "rmatvec: y has wrong length");
        assert_eq!(out.len(), plan.cols, "rmatvec: out has wrong length");
        // xlint: allow(warm-path-alloc, reason = "arena reservation boundary: grows the workspace arena only up to the planned requirement on first use; steady-state calls are a bounds check")
        ws.reserve(plan.rmv_scratch);
        let (scratch, pool) = ws.carve(plan.rmv_scratch, plan.pool_workers, plan.pool_arena);
        self.rmatvec_plan(&plan.root, y, out, scratch, pool);
    }

    /// `out += Aᵀ · y` — the accumulating variant of
    /// [`Matrix::rmatvec_into`]. Sparse-structure-aware: a CSR block
    /// scatter-adds its `nnz` entries, and products push the accumulation
    /// into their right factor, so a `Union` of narrow blocks costs the sum
    /// of block sizes rather than `O(blocks · n)`.
    ///
    /// WARM: steady-state evaluation entry point (see
    /// [`Matrix::matvec_into`]).
    pub fn rmatvec_add(&self, y: &[f64], out: &mut [f64], ws: &mut Workspace) {
        // xlint: allow(warm-path-alloc, reason = "planning boundary: plan_for allocates only on the first call per matrix; repeat calls take the memoized fast path — the steady state the counting-allocator suite gates")
        let plan = ws.plan_for(self);
        assert_eq!(y.len(), plan.rows, "rmatvec_add: y has wrong length");
        assert_eq!(out.len(), plan.cols, "rmatvec_add: out has wrong length");
        // xlint: allow(warm-path-alloc, reason = "arena reservation boundary: grows the workspace arena only up to the planned requirement on first use; steady-state calls are a bounds check")
        ws.reserve(plan.rmva_scratch);
        let (scratch, pool) = ws.carve(plan.rmva_scratch, plan.pool_workers, plan.pool_arena);
        self.rmatvec_add_plan(&plan.root, y, out, scratch, pool);
    }

    // ------------------------------------------------------------------
    // Planned evaluation: recursion guided by NodePlan records
    // ------------------------------------------------------------------

    /// Planned worker for `out = A·x`. `scratch` must hold the plan's
    /// `mv_scratch` scalars; combinator nodes read split offsets and chunk
    /// decisions from `plan` instead of re-deriving them from the tree,
    /// and parallel regions borrow worker arenas from `pool`.
    pub(crate) fn matvec_plan(
        &self,
        plan: &NodePlan,
        x: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
        pool: &mut ArenaPool,
    ) {
        match (self, plan) {
            (m, NodePlan::Leaf) => m.matvec_rec(x, out, scratch),
            (Matrix::Union(blocks), NodePlan::Union(up)) => {
                #[cfg(feature = "parallel")]
                if up.par_fwd_chunk > 0 && !pool.is_nested() {
                    parallel::union_matvec(blocks, up, x, out, pool);
                    return;
                }
                let mut offset = 0;
                for ((b, bp), &m) in blocks.iter().zip(&up.blocks).zip(&up.block_rows) {
                    b.matvec_plan(&bp.root, x, &mut out[offset..offset + m], scratch, pool);
                    offset += m;
                }
            }
            (m @ Matrix::Product(..), NodePlan::Chain(cp)) => {
                chain_matvec(m, cp, x, out, scratch, pool)
            }
            (Matrix::Kronecker(a, b), NodePlan::Kron(kp)) => {
                kron_matvec_plan(a, b, kp, x, out, scratch, pool)
            }
            (Matrix::Scaled(c, a), NodePlan::Scaled { child, .. }) => {
                a.matvec_plan(child, x, out, scratch, pool);
                kernels::scale(out, *c);
            }
            (Matrix::Transpose(a), NodePlan::Transpose { child, .. }) => {
                a.rmatvec_plan(child, x, out, scratch, pool)
            }
            _ => unreachable!(
                "evaluation plan does not match matrix structure (shape-fingerprint collision)"
            ),
        }
    }

    /// Planned worker for `out = Aᵀ·y`.
    pub(crate) fn rmatvec_plan(
        &self,
        plan: &NodePlan,
        y: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
        pool: &mut ArenaPool,
    ) {
        match (self, plan) {
            (m, NodePlan::Leaf) => m.rmatvec_rec(y, out, scratch),
            (Matrix::Union(blocks), NodePlan::Union(up)) => {
                // Unionᵀ is a horizontal stack: contributions accumulate.
                #[cfg(feature = "parallel")]
                if up.par_bwd_chunk > 0 && !pool.is_nested() {
                    out.fill(0.0);
                    parallel::union_rmatvec_add(blocks, up, y, out, pool);
                    return;
                }
                out.fill(0.0);
                let mut offset = 0;
                for ((b, bp), &m) in blocks.iter().zip(&up.blocks).zip(&up.block_rows) {
                    b.rmatvec_add_plan(&bp.root, &y[offset..offset + m], out, scratch, pool);
                    offset += m;
                }
            }
            (m @ Matrix::Product(..), NodePlan::Chain(cp)) => {
                chain_bwd(m, cp, y, out, scratch, pool, false)
            }
            (Matrix::Kronecker(a, b), NodePlan::Kron(kp)) => {
                kron_rmatvec_plan(a, b, kp, y, out, scratch, pool)
            }
            (Matrix::Scaled(c, a), NodePlan::Scaled { child, .. }) => {
                a.rmatvec_plan(child, y, out, scratch, pool);
                kernels::scale(out, *c);
            }
            (Matrix::Transpose(a), NodePlan::Transpose { child, .. }) => {
                a.matvec_plan(child, y, out, scratch, pool)
            }
            _ => unreachable!(
                "evaluation plan does not match matrix structure (shape-fingerprint collision)"
            ),
        }
    }

    /// Planned worker for `out += Aᵀ·y`.
    pub(crate) fn rmatvec_add_plan(
        &self,
        plan: &NodePlan,
        y: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
        pool: &mut ArenaPool,
    ) {
        match (self, plan) {
            (m, NodePlan::Leaf) => m.rmatvec_add_rec(y, out, scratch),
            (Matrix::Union(blocks), NodePlan::Union(up)) => {
                #[cfg(feature = "parallel")]
                if up.par_bwd_chunk > 0 && !pool.is_nested() {
                    parallel::union_rmatvec_add(blocks, up, y, out, pool);
                    return;
                }
                let mut offset = 0;
                for ((b, bp), &m) in blocks.iter().zip(&up.blocks).zip(&up.block_rows) {
                    b.rmatvec_add_plan(&bp.root, &y[offset..offset + m], out, scratch, pool);
                    offset += m;
                }
            }
            (m @ Matrix::Product(..), NodePlan::Chain(cp)) => {
                chain_bwd(m, cp, y, out, scratch, pool, true)
            }
            (Matrix::Scaled(c, a), NodePlan::Scaled { rows, child }) => {
                debug_assert_eq!(y.len(), *rows);
                let (scaled, rest) = scratch.split_at_mut(*rows);
                kernels::scale_into(scaled, *c, y);
                a.rmatvec_add_plan(child, scaled, out, rest, pool);
            }
            (Matrix::Transpose(a), NodePlan::Transpose { child_rows, child }) => {
                // (Aᵀ)ᵀ y = A y, accumulated.
                let (t, rest) = scratch.split_at_mut(*child_rows);
                a.matvec_plan(child, y, t, rest, pool);
                kernels::add_assign(out, t);
            }
            // Kronecker scatter-adds through a dense temporary of the full
            // output width (it touches all of `out` anyway).
            (m @ Matrix::Kronecker(..), kp @ NodePlan::Kron(..)) => {
                let (tmp, rest) = scratch.split_at_mut(out.len());
                m.rmatvec_plan(kp, y, tmp, rest, pool);
                kernels::add_assign(out, tmp);
            }
            _ => unreachable!(
                "evaluation plan does not match matrix structure (shape-fingerprint collision)"
            ),
        }
    }

    // ------------------------------------------------------------------
    // Unplanned serial recursion: leaf kernels and the sizing reference
    // ------------------------------------------------------------------

    /// Recursive worker for `out = A·x`. `scratch` must hold at least
    /// [`Matrix::matvec_scratch`] scalars; nodes carve what they need off
    /// the front and pass the rest down. This is the serial reference
    /// engine: the planned path delegates leaf evaluation here and parallel
    /// workers never re-enter it with combinator nodes.
    pub(crate) fn matvec_rec(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        match self {
            Matrix::Dense(d) => d.matvec_into(x, out),
            Matrix::Sparse(s) => s.matvec_into(x, out),
            Matrix::Diagonal(d) => kernels::mul_into(out, d, x),
            Matrix::Identity { .. } => out.copy_from_slice(x),
            Matrix::Ones { .. } => out.fill(kernels::sum(x)),
            Matrix::Prefix { .. } => kernels::prefix_sum_into(out, x),
            Matrix::Suffix { .. } => kernels::suffix_sum_into(out, x),
            Matrix::Wavelet { .. } => wavelet_matvec(x, out),
            Matrix::Range(r) => r.matvec_rec(x, out, scratch),
            Matrix::Rect2D(r) => r.matvec_rec(x, out, scratch),
            Matrix::Union(blocks) => {
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.matvec_rec(x, &mut out[offset..offset + m], scratch);
                    offset += m;
                }
            }
            Matrix::Product(a, b) => {
                let (t, rest) = scratch.split_at_mut(b.rows());
                b.matvec_rec(x, t, rest);
                a.matvec_rec(t, out, rest);
            }
            Matrix::Kronecker(a, b) => kron_matvec(a, b, x, out, scratch),
            Matrix::Scaled(c, a) => {
                a.matvec_rec(x, out, scratch);
                kernels::scale(out, *c);
            }
            Matrix::Transpose(a) => a.rmatvec_rec(x, out, scratch),
        }
    }

    /// Recursive worker for `out = Aᵀ·y`; `scratch` must hold at least
    /// [`Matrix::rmatvec_scratch`] scalars.
    pub(crate) fn rmatvec_rec(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        match self {
            Matrix::Dense(d) => d.rmatvec_into(y, out),
            Matrix::Sparse(s) => s.rmatvec_into(y, out),
            Matrix::Diagonal(d) => kernels::mul_into(out, d, y),
            Matrix::Identity { .. } => out.copy_from_slice(y),
            Matrix::Ones { .. } => out.fill(kernels::sum(y)),
            // Prefixᵀ behaves like Suffix and vice versa.
            Matrix::Prefix { .. } => kernels::suffix_sum_into(out, y),
            Matrix::Suffix { .. } => kernels::prefix_sum_into(out, y),
            Matrix::Wavelet { .. } => wavelet_rmatvec(y, out),
            Matrix::Range(r) => r.rmatvec_rec(y, out, scratch),
            Matrix::Rect2D(r) => r.rmatvec_rec(y, out, scratch),
            Matrix::Union(blocks) => {
                // Unionᵀ is a horizontal stack: contributions accumulate.
                // Scatter-adding per block keeps the cost proportional to
                // each block's own work instead of O(blocks · n) — vital
                // for striped plans whose unions have hundreds of blocks.
                out.fill(0.0);
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.rmatvec_add_rec(&y[offset..offset + m], out, scratch);
                    offset += m;
                }
            }
            Matrix::Product(a, b) => {
                let (t, rest) = scratch.split_at_mut(b.rows());
                a.rmatvec_rec(y, t, rest);
                b.rmatvec_rec(t, out, rest);
            }
            Matrix::Kronecker(a, b) => kron_rmatvec(a, b, y, out, scratch),
            Matrix::Scaled(c, a) => {
                a.rmatvec_rec(y, out, scratch);
                kernels::scale(out, *c);
            }
            Matrix::Transpose(a) => a.matvec_rec(y, out, scratch),
        }
    }

    /// Recursive worker for `out += Aᵀ·y`; `scratch` must hold at least
    /// [`Matrix::rmatvec_add_scratch`] scalars.
    pub(crate) fn rmatvec_add_rec(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        match self {
            Matrix::Sparse(s) => {
                for (i, &yi) in y.iter().enumerate() {
                    if yi == 0.0 {
                        continue;
                    }
                    for (c, v) in s.row_entries(i) {
                        out[c] += yi * v;
                    }
                }
            }
            Matrix::Identity { .. } => kernels::add_assign(out, y),
            Matrix::Diagonal(d) => kernels::mul_add_assign(out, d, y),
            Matrix::Product(a, b) => {
                let (t, rest) = scratch.split_at_mut(b.rows());
                a.rmatvec_rec(y, t, rest);
                b.rmatvec_add_rec(t, out, rest);
            }
            Matrix::Scaled(c, a) => {
                let (scaled, rest) = scratch.split_at_mut(y.len());
                kernels::scale_into(scaled, *c, y);
                a.rmatvec_add_rec(scaled, out, rest);
            }
            Matrix::Union(blocks) => {
                let mut offset = 0;
                for b in blocks {
                    let m = b.rows();
                    b.rmatvec_add_rec(&y[offset..offset + m], out, scratch);
                    offset += m;
                }
            }
            Matrix::Transpose(a) => {
                // (Aᵀ)ᵀ y = A y, accumulated.
                let (t, rest) = scratch.split_at_mut(a.rows());
                a.matvec_rec(y, t, rest);
                kernels::add_assign(out, t);
            }
            // Dense blocks and the remaining implicit types touch all of
            // `out` anyway; a dense temporary costs nothing extra
            // asymptotically.
            _ => {
                let (tmp, rest) = scratch.split_at_mut(out.len());
                self.rmatvec_rec(y, tmp, rest);
                kernels::add_assign(out, tmp);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Product chains: ping-pong buffer evaluation
// ---------------------------------------------------------------------

/// `out = f_0 · f_1 · … · f_m · x` over a planned chain, using the plan's
/// ping-pong buffers. The arithmetic sequence is identical to the nested
/// recursion (each factor applied once, innermost first), so results are
/// bit-identical — only the intermediate *storage* changes: `min(m, 2)`
/// buffers instead of `m`.
fn chain_matvec(
    node: &Matrix,
    cp: &ChainPlan,
    x: &[f64],
    out: &mut [f64],
    scratch: &mut [f64],
    pool: &mut ArenaPool,
) {
    let (b0, rest) = scratch.split_at_mut(cp.buf_len);
    let (b1, rest) = rest.split_at_mut(if cp.bufs == 2 { cp.buf_len } else { 0 });
    let (f0, tail) = match node {
        Matrix::Product(a, b) => (&**a, &**b),
        _ => unreachable!("chain plan on non-product node"),
    };
    chain_fwd_tail(tail, cp, 1, x, b0, b1, rest, pool);
    // out = f_0 · s_1 ; s_1 lives in b0 (odd slot).
    f0.matvec_plan(&cp.factors[0].root, &b0[..cp.rows[1]], out, rest, pool);
}

/// Computes the intermediate `s_idx = f_idx · … · f_m · x` into its
/// ping-pong slot (odd `idx` → `b0`, even → `b1`). `spine` is the subtree
/// whose product equals that suffix of the chain.
#[allow(clippy::too_many_arguments)]
fn chain_fwd_tail(
    spine: &Matrix,
    cp: &ChainPlan,
    idx: usize,
    x: &[f64],
    b0: &mut [f64],
    b1: &mut [f64],
    rest: &mut [f64],
    pool: &mut ArenaPool,
) {
    let last = cp.factors.len() - 1;
    if idx == last {
        let dst = if cp.bufs == 1 || idx % 2 == 1 { b0 } else { b1 };
        spine.matvec_plan(
            &cp.factors[idx].root,
            x,
            &mut dst[..cp.rows[idx]],
            rest,
            pool,
        );
        return;
    }
    let (f, tail) = match spine {
        Matrix::Product(a, b) => (&**a, &**b),
        _ => unreachable!("chain plan longer than the product spine"),
    };
    chain_fwd_tail(tail, cp, idx + 1, x, &mut *b0, &mut *b1, &mut *rest, pool);
    // s_idx = f_idx · s_{idx+1}; consecutive intermediates alternate slots,
    // and by the time s_idx is written, s_{idx+2} (which shared its slot)
    // is dead.
    let (dst, src) = if idx % 2 == 1 {
        (&mut *b0, &*b1)
    } else {
        (&mut *b1, &*b0)
    };
    f.matvec_plan(
        &cp.factors[idx].root,
        &src[..cp.rows[idx + 1]],
        &mut dst[..cp.rows[idx]],
        rest,
        pool,
    );
}

/// Transpose-direction chain evaluation, iterative along the spine:
/// `s_0 = f_0ᵀ y`, `s_j = f_jᵀ s_{j-1}`, finishing with the innermost
/// factor — plain (`add = false`) or accumulating (`add = true`).
#[allow(clippy::too_many_arguments)]
fn chain_bwd(
    node: &Matrix,
    cp: &ChainPlan,
    y: &[f64],
    out: &mut [f64],
    scratch: &mut [f64],
    pool: &mut ArenaPool,
    add: bool,
) {
    let last = cp.factors.len() - 1;
    let (b0, rest) = scratch.split_at_mut(cp.buf_len);
    let (b1, rest) = rest.split_at_mut(if cp.bufs == 2 { cp.buf_len } else { 0 });
    let mut cur = node;
    for idx in 0..last {
        let (f, tail) = match cur {
            Matrix::Product(a, b) => (&**a, &**b),
            _ => unreachable!("chain plan longer than the product spine"),
        };
        // s_idx has length cols(f_idx) = rows(f_{idx+1}); even slots in b0.
        let dlen = cp.rows[idx + 1];
        if idx == 0 {
            let dst = if cp.bufs == 1 || idx.is_multiple_of(2) {
                &mut *b0
            } else {
                &mut *b1
            };
            f.rmatvec_plan(&cp.factors[0].root, y, &mut dst[..dlen], rest, pool);
        } else {
            let (dst, src) = if idx.is_multiple_of(2) {
                (&mut *b0, &*b1)
            } else {
                (&mut *b1, &*b0)
            };
            f.rmatvec_plan(
                &cp.factors[idx].root,
                &src[..cp.rows[idx]],
                &mut dst[..dlen],
                rest,
                pool,
            );
        }
        cur = tail;
    }
    let src = if cp.bufs == 1 || (last - 1).is_multiple_of(2) {
        &*b0
    } else {
        &*b1
    };
    let src = &src[..cp.rows[last]];
    if add {
        cur.rmatvec_add_plan(&cp.factors[last].root, src, out, rest, pool);
    } else {
        cur.rmatvec_plan(&cp.factors[last].root, src, out, rest, pool);
    }
}

// ---------------------------------------------------------------------
// Kronecker: planned vec-trick with optional stage parallelism
// ---------------------------------------------------------------------

/// `out = (A ⊗ B) x` using the vec-trick: reshape x as an `nA×nB` matrix X,
/// compute `T = X·Bᵀ` (apply B to every row), then `out = A·T` columnwise.
/// Cost: `nA·Time(B) + mB·Time(A)` (paper Table 3). All temporaries come
/// out of `scratch`; shapes and chunk decisions come from the plan.
#[allow(clippy::too_many_arguments)]
fn kron_matvec_plan(
    a: &Matrix,
    b: &Matrix,
    kp: &KronPlan,
    x: &[f64],
    out: &mut [f64],
    scratch: &mut [f64],
    pool: &mut ArenaPool,
) {
    let (ma, na, mb, nb) = (kp.a_rows, kp.a_cols, kp.b_rows, kp.b_cols);
    let (t, rest) = scratch.split_at_mut(na * mb);
    #[cfg(feature = "parallel")]
    let stage1_done = kp.par_fwd_rows > 0 && !pool.is_nested() && {
        parallel::kron_apply_rows(b, kp, x, t, nb, mb, pool);
        true
    };
    #[cfg(not(feature = "parallel"))]
    let stage1_done = false;
    if !stage1_done {
        for i in 0..na {
            b.matvec_plan(
                &kp.b,
                &x[i * nb..(i + 1) * nb],
                &mut t[i * mb..(i + 1) * mb],
                rest,
                pool,
            );
        }
    }
    // Stage 2 walks columns of T (stride mb). Under `simd` it processes
    // KRON_PANEL columns per pass: one strided sweep gathers four adjacent
    // entries per row (amortizing the cache-line traffic fourfold), A is
    // applied to each gathered column exactly as before, and one sweep
    // scatters the four results back. Pure data-movement blocking —
    // bit-identical to the single-column walk, which the scalar leg (and
    // the unplanned reference engine) still uses.
    #[cfg(feature = "simd")]
    {
        use crate::kernels::KRON_PANEL;
        let (cols, rest) = rest.split_at_mut(KRON_PANEL * na);
        let (ocols, rest) = rest.split_at_mut(KRON_PANEL * ma);
        let mut q = 0;
        while q + KRON_PANEL <= mb {
            kernels::gather_panel(t, mb, q, na, cols);
            for (colj, ocolj) in cols.chunks_exact(na).zip(ocols.chunks_exact_mut(ma)) {
                a.matvec_plan(&kp.a, colj, ocolj, rest, pool);
            }
            kernels::scatter_panel(ocols, ma, out, mb, q);
            q += KRON_PANEL;
        }
        for q in q..mb {
            let col = &mut cols[..na];
            for (i, c) in col.iter_mut().enumerate() {
                *c = t[i * mb + q];
            }
            a.matvec_plan(&kp.a, &cols[..na], &mut ocols[..ma], rest, pool);
            for (p, &v) in ocols[..ma].iter().enumerate() {
                out[p * mb + q] = v;
            }
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        let (col, rest) = rest.split_at_mut(na);
        let (ocol, rest) = rest.split_at_mut(ma);
        for q in 0..mb {
            for i in 0..na {
                col[i] = t[i * mb + q];
            }
            a.matvec_plan(&kp.a, col, ocol, rest, pool);
            for p in 0..ma {
                out[p * mb + q] = ocol[p];
            }
        }
    }
}

/// `out = (A ⊗ B)ᵀ y = (Aᵀ ⊗ Bᵀ) y`; mirror of [`kron_matvec_plan`] with
/// both stages parallelizable (stage 2 over output column chunks).
#[allow(clippy::too_many_arguments)]
fn kron_rmatvec_plan(
    a: &Matrix,
    b: &Matrix,
    kp: &KronPlan,
    y: &[f64],
    out: &mut [f64],
    scratch: &mut [f64],
    pool: &mut ArenaPool,
) {
    let (ma, na, mb, nb) = (kp.a_rows, kp.a_cols, kp.b_rows, kp.b_cols);
    let (t, rest) = scratch.split_at_mut(ma * nb);
    #[cfg(feature = "parallel")]
    let stage1_done = kp.par_bwd_rows > 0 && !pool.is_nested() && {
        parallel::kron_apply_rows_t(b, kp, y, t, mb, nb, pool);
        true
    };
    #[cfg(not(feature = "parallel"))]
    let stage1_done = false;
    if !stage1_done {
        for p in 0..ma {
            b.rmatvec_plan(
                &kp.b,
                &y[p * mb..(p + 1) * mb],
                &mut t[p * nb..(p + 1) * nb],
                rest,
                pool,
            );
        }
    }
    #[cfg(feature = "parallel")]
    if kp.par_bwd_cols > 0 && !pool.is_nested() {
        parallel::kron_scatter_cols(a, kp, t, out, ma, na, nb, pool);
        return;
    }
    // Panel-blocked stage 2, mirror of the forward direction: T is ma×nb
    // (stride nb), gathered columns have length ma, outputs length na.
    #[cfg(feature = "simd")]
    {
        use crate::kernels::KRON_PANEL;
        let (cols, rest) = rest.split_at_mut(KRON_PANEL * ma);
        let (ocols, rest) = rest.split_at_mut(KRON_PANEL * na);
        let mut j = 0;
        while j + KRON_PANEL <= nb {
            kernels::gather_panel(t, nb, j, ma, cols);
            for (colp, ocolp) in cols.chunks_exact(ma).zip(ocols.chunks_exact_mut(na)) {
                a.rmatvec_plan(&kp.a, colp, ocolp, rest, pool);
            }
            kernels::scatter_panel(ocols, na, out, nb, j);
            j += KRON_PANEL;
        }
        for j in j..nb {
            let col = &mut cols[..ma];
            for (p, c) in col.iter_mut().enumerate() {
                *c = t[p * nb + j];
            }
            a.rmatvec_plan(&kp.a, &cols[..ma], &mut ocols[..na], rest, pool);
            for (i, &v) in ocols[..na].iter().enumerate() {
                out[i * nb + j] = v;
            }
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        let (col, rest) = rest.split_at_mut(ma);
        let (ocol, rest) = rest.split_at_mut(na);
        for j in 0..nb {
            for p in 0..ma {
                col[p] = t[p * nb + j];
            }
            a.rmatvec_plan(&kp.a, col, ocol, rest, pool);
            for i in 0..na {
                out[i * nb + j] = ocol[i];
            }
        }
    }
}

/// Unplanned serial Kronecker forward product (reference engine).
fn kron_matvec(a: &Matrix, b: &Matrix, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
    let (ma, na) = a.shape();
    let (mb, nb) = b.shape();
    let (t, rest) = scratch.split_at_mut(na * mb);
    for i in 0..na {
        b.matvec_rec(&x[i * nb..(i + 1) * nb], &mut t[i * mb..(i + 1) * mb], rest);
    }
    let (col, rest) = rest.split_at_mut(na);
    let (ocol, rest) = rest.split_at_mut(ma);
    for q in 0..mb {
        for i in 0..na {
            col[i] = t[i * mb + q];
        }
        a.matvec_rec(col, ocol, rest);
        for p in 0..ma {
            out[p * mb + q] = ocol[p];
        }
    }
}

/// Unplanned serial Kronecker transpose product (reference engine).
fn kron_rmatvec(a: &Matrix, b: &Matrix, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
    let (ma, na) = a.shape();
    let (mb, nb) = b.shape();
    let (t, rest) = scratch.split_at_mut(ma * nb);
    for p in 0..ma {
        b.rmatvec_rec(&y[p * mb..(p + 1) * mb], &mut t[p * nb..(p + 1) * nb], rest);
    }
    let (col, rest) = rest.split_at_mut(ma);
    let (ocol, rest) = rest.split_at_mut(na);
    for j in 0..nb {
        for p in 0..ma {
            col[p] = t[p * nb + j];
        }
        a.rmatvec_rec(col, ocol, rest);
        for i in 0..na {
            out[i * nb + j] = ocol[i];
        }
    }
}

/// Multi-threaded evaluation of independent sub-products, behind the
/// `parallel` feature. Built on the persistent [`crate::pool`] executor
/// (the offline build environment cannot vendor rayon): chunk sizes are
/// fixed in the evaluation plan, so results are deterministic run-to-run
/// — and bit-identical for every pool size, since the pool only decides
/// *where* each fixed chunk runs. Workers borrow their scratch — and, in
/// the scatter direction, their private accumulators — from the
/// workspace's plan-sized [`ArenaPool`] instead of allocating, and pooled
/// dispatch copies each chunk closure into a preallocated job slot, so
/// the warm threaded paths perform **zero** heap allocations and zero
/// thread creation (gated by `alloc_parallel.rs` with an every-size
/// counting allocator). The paths engage only above a plan-time work
/// threshold. Worker arena pools are marked *nested*: a parallel-eligible
/// node under a pooled chunk worker (e.g. the large-union factor of an
/// `hdmm_kron` strategy) evaluates serially instead of spawning nested
/// regions and allocating fresh arenas — the outer region already
/// saturates the machine (gated by `alloc_parallel.rs`).
#[cfg(feature = "parallel")]
mod parallel {
    use super::ArenaPool;
    use crate::plan::{KronPlan, UnionPlan};
    use crate::pool;
    use crate::Matrix;

    /// `Union` matvec with one worker per plan-time chunk of blocks.
    /// Blocks write disjoint output spans, so this is bit-identical to the
    /// serial path.
    pub(super) fn union_matvec(
        blocks: &[Matrix],
        up: &UnionPlan,
        x: &[f64],
        out: &mut [f64],
        pool: &mut ArenaPool,
    ) {
        let chunk = up.par_fwd_chunk;
        let nchunks = blocks.len().div_ceil(chunk);
        let arenas = pool.arenas(nchunks, up.block_mv_scratch);
        pool::scope(|s| {
            let mut rem = out;
            for ((bchunk, pchunk), (rchunk, arena)) in blocks
                .chunks(chunk)
                .zip(up.blocks.chunks(chunk))
                .zip(up.block_rows.chunks(chunk).zip(arenas.iter_mut()))
            {
                let span: usize = rchunk.iter().sum();
                let (head, tail) = rem.split_at_mut(span);
                rem = tail;
                s.spawn(move || {
                    let scratch = &mut arena[..up.block_mv_scratch];
                    let mut wpool = ArenaPool::for_worker();
                    let mut off = 0;
                    for ((b, bp), &m) in bchunk.iter().zip(pchunk).zip(rchunk) {
                        b.matvec_plan(&bp.root, x, &mut head[off..off + m], scratch, &mut wpool);
                        off += m;
                    }
                });
            }
        });
    }

    /// `Unionᵀ` scatter-add over plan-time chunks of blocks: each worker
    /// accumulates its chunk into a private full-width accumulator carved
    /// from its pool arena; the accumulators are merged **in fixed chunk
    /// order** after the barrier, so the result is deterministic
    /// run-to-run (within one chunk the blocks scatter in their serial
    /// order; across chunks only the grouping of the final sums differs
    /// from the serial path, by at most the usual f64 rounding).
    pub(super) fn union_rmatvec_add(
        blocks: &[Matrix],
        up: &UnionPlan,
        y: &[f64],
        out: &mut [f64],
        pool: &mut ArenaPool,
    ) {
        let chunk = up.par_bwd_chunk;
        let cols = out.len();
        let nchunks = blocks.len().div_ceil(chunk);
        let per = cols + up.block_rmva_scratch;
        let arenas = pool.arenas(nchunks, per);
        pool::scope(|s| {
            let mut offset = 0;
            for ((bchunk, pchunk), (rchunk, arena)) in blocks
                .chunks(chunk)
                .zip(up.blocks.chunks(chunk))
                .zip(up.block_rows.chunks(chunk).zip(arenas.iter_mut()))
            {
                let span: usize = rchunk.iter().sum();
                let ys = &y[offset..offset + span];
                offset += span;
                s.spawn(move || {
                    let (local, scratch) = arena[..per].split_at_mut(cols);
                    local.fill(0.0); // the arena is reused across calls
                    let mut wpool = ArenaPool::for_worker();
                    let mut off = 0;
                    for ((b, bp), &m) in bchunk.iter().zip(pchunk).zip(rchunk) {
                        b.rmatvec_add_plan(&bp.root, &ys[off..off + m], local, scratch, &mut wpool);
                        off += m;
                    }
                });
            }
        });
        // Deterministic fixed-order merge of the per-worker accumulators
        // (the scatter-add kernel is order-preserving: bit-identical to
        // the scalar loop in both feature legs).
        for arena in arenas.iter().take(nchunks) {
            crate::kernels::add_assign(out, &arena[..cols]);
        }
    }

    /// Stage 1 of the Kronecker forward vec-trick — applying `B` to each of
    /// the `na` rows of the reshaped input — parallelized over plan-time
    /// row chunks. Rows write disjoint spans of `t`: bit-identical.
    pub(super) fn kron_apply_rows(
        b: &Matrix,
        kp: &KronPlan,
        x: &[f64],
        t: &mut [f64],
        nb: usize,
        mb: usize,
        pool: &mut ArenaPool,
    ) {
        let rows_per = kp.par_fwd_rows;
        let nchunks = t.len().div_ceil(rows_per * mb);
        let arenas = pool.arenas(nchunks, kp.b_mv_scratch);
        pool::scope(|s| {
            for ((c, tchunk), arena) in t.chunks_mut(rows_per * mb).enumerate().zip(arenas) {
                let x = &x[c * rows_per * nb..];
                s.spawn(move || {
                    let scratch = &mut arena[..kp.b_mv_scratch];
                    let mut wpool = ArenaPool::for_worker();
                    for (i, trow) in tchunk.chunks_mut(mb).enumerate() {
                        b.matvec_plan(&kp.b, &x[i * nb..(i + 1) * nb], trow, scratch, &mut wpool);
                    }
                });
            }
        });
    }

    /// Transpose-direction mirror of [`kron_apply_rows`] (stage 1 of the
    /// scatter vec-trick).
    pub(super) fn kron_apply_rows_t(
        b: &Matrix,
        kp: &KronPlan,
        y: &[f64],
        t: &mut [f64],
        mb: usize,
        nb: usize,
        pool: &mut ArenaPool,
    ) {
        let rows_per = kp.par_bwd_rows;
        let nchunks = t.len().div_ceil(rows_per * nb);
        let arenas = pool.arenas(nchunks, kp.b_rmv_scratch);
        pool::scope(|s| {
            for ((c, tchunk), arena) in t.chunks_mut(rows_per * nb).enumerate().zip(arenas) {
                let y = &y[c * rows_per * mb..];
                s.spawn(move || {
                    let scratch = &mut arena[..kp.b_rmv_scratch];
                    let mut wpool = ArenaPool::for_worker();
                    for (p, trow) in tchunk.chunks_mut(nb).enumerate() {
                        b.rmatvec_plan(&kp.b, &y[p * mb..(p + 1) * mb], trow, scratch, &mut wpool);
                    }
                });
            }
        });
    }

    /// Stage 2 of the Kronecker transpose product parallelized over
    /// **output column chunks**: worker `c` computes `Aᵀ` applied to
    /// columns `[c·w, (c+1)·w)` of the stage-1 partials into a private
    /// panel carved from its pool arena; the panels are copied into `out`
    /// in chunk order after the barrier. Every output cell is produced by
    /// exactly one worker, so this is bit-identical to the serial stage 2.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn kron_scatter_cols(
        a: &Matrix,
        kp: &KronPlan,
        t: &[f64],
        out: &mut [f64],
        ma: usize,
        na: usize,
        nb: usize,
        pool: &mut ArenaPool,
    ) {
        let cols_per = kp.par_bwd_cols;
        let nchunks = nb.div_ceil(cols_per);
        // Per-worker arena layout: [na·w panel | ma gather col | na out col
        // | A's rmatvec scratch].
        let per = na * cols_per + ma + na + kp.a_rmv_scratch;
        let arenas = pool.arenas(nchunks, per);
        pool::scope(|s| {
            for (c, arena) in arenas.iter_mut().enumerate() {
                let j0 = c * cols_per;
                let j1 = (j0 + cols_per).min(nb);
                s.spawn(move || {
                    let w = j1 - j0;
                    let (buf, rest) = arena[..per].split_at_mut(na * cols_per);
                    let (col, rest) = rest.split_at_mut(ma);
                    let (ocol, scratch) = rest.split_at_mut(na);
                    let mut wpool = ArenaPool::for_worker();
                    for j in j0..j1 {
                        for (p, cp) in col.iter_mut().enumerate() {
                            *cp = t[p * nb + j];
                        }
                        a.rmatvec_plan(&kp.a, col, ocol, scratch, &mut wpool);
                        for (i, &o) in ocol.iter().enumerate() {
                            buf[i * w + (j - j0)] = o;
                        }
                    }
                });
            }
        });
        for (c, arena) in arenas.iter().enumerate() {
            let j0 = c * cols_per;
            let w = ((j0 + cols_per).min(nb)) - j0;
            let buf = &arena[..na * cols_per];
            for i in 0..na {
                out[i * nb + j0..i * nb + j0 + w].copy_from_slice(&buf[i * w..i * w + w]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x5() -> Vec<f64> {
        vec![1.0, 2.0, 3.0, 4.0, 5.0]
    }

    #[test]
    fn identity_and_diagonal() {
        assert_eq!(Matrix::identity(5).matvec(&x5()), x5());
        let d = Matrix::diagonal(vec![1.0, 0.0, -1.0, 2.0, 0.5]);
        assert_eq!(d.matvec(&x5()), vec![1.0, 0.0, -3.0, 8.0, 2.5]);
        assert_eq!(d.rmatvec(&x5()), vec![1.0, 0.0, -3.0, 8.0, 2.5]);
    }

    #[test]
    fn ones_and_total() {
        assert_eq!(Matrix::ones(3, 5).matvec(&x5()), vec![15.0; 3]);
        assert_eq!(Matrix::total(5).matvec(&x5()), vec![15.0]);
        assert_eq!(Matrix::total(5).rmatvec(&[2.0]), vec![2.0; 5]);
    }

    #[test]
    fn prefix_suffix_are_transposes() {
        let p = Matrix::prefix(5);
        let s = Matrix::suffix(5);
        assert_eq!(p.matvec(&x5()), vec![1.0, 3.0, 6.0, 10.0, 15.0]);
        assert_eq!(s.matvec(&x5()), vec![15.0, 14.0, 12.0, 9.0, 5.0]);
        assert_eq!(p.rmatvec(&x5()), s.matvec(&x5()));
        assert_eq!(s.rmatvec(&x5()), p.matvec(&x5()));
    }

    #[test]
    fn rmatvec_add_matches_rmatvec_for_all_variants() {
        let cases = vec![
            Matrix::identity(5),
            Matrix::prefix(5),
            Matrix::wavelet(5),
            Matrix::diagonal(vec![1.0, -2.0, 0.5, 3.0, 0.0]),
            Matrix::select_rows(5, &[3, 1]),
            Matrix::scaled(2.0, Matrix::select_rows(5, &[0, 4])),
            Matrix::product(Matrix::total(3), Matrix::select_rows(5, &[0, 2, 4])),
            Matrix::vstack(vec![Matrix::identity(5), Matrix::total(5)]),
            Matrix::prefix(5).transpose().transpose(),
            Matrix::Transpose(Box::new(Matrix::wavelet(5))),
        ];
        for m in cases {
            let y: Vec<f64> = (0..m.rows()).map(|i| i as f64 - 1.5).collect();
            let mut acc = vec![1.0; m.cols()];
            let mut ws = Workspace::new();
            m.rmatvec_add(&y, &mut acc, &mut ws);
            let direct = m.rmatvec(&y);
            for (a, d) in acc.iter().zip(&direct) {
                assert!((a - (d + 1.0)).abs() < 1e-12, "mismatch for {m:?}");
            }
        }
    }

    #[test]
    fn union_stacks_and_accumulates() {
        let u = Matrix::vstack(vec![Matrix::total(5), Matrix::identity(5)]);
        assert_eq!(u.matvec(&x5()), vec![15.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let y = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        // Unionᵀ y = Totalᵀ·1 + Iᵀ·rest = [1+1, ...]
        assert_eq!(u.rmatvec(&y), vec![2.0; 5]);
    }

    #[test]
    fn product_composes() {
        // Total · Prefix = [n, n-1, ..., 1] as a row
        let p = Matrix::product(Matrix::total(5), Matrix::prefix(5));
        assert_eq!(
            p.matvec(&x5()),
            vec![1.0 * 5.0 + 2.0 * 4.0 + 3.0 * 3.0 + 4.0 * 2.0 + 5.0]
        );
    }

    #[test]
    fn long_product_chain_matches_step_by_step() {
        // 5 factors exercise the ping-pong buffers in both directions.
        let n = 6;
        let factors = [
            Matrix::prefix(n),
            Matrix::diagonal((0..n).map(|i| 1.0 + i as f64 * 0.5).collect()),
            Matrix::suffix(n),
            Matrix::wavelet(n),
            Matrix::diagonal((0..n).map(|i| 2.0 - i as f64 * 0.3).collect()),
        ];
        let mut chain = factors[factors.len() - 1].clone();
        for f in factors[..factors.len() - 1].iter().rev() {
            chain = Matrix::Product(Box::new(f.clone()), Box::new(chain.clone()));
        }
        let x: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        // Reference: apply factors innermost-first, one at a time.
        let mut expect = x.clone();
        for f in factors.iter().rev() {
            expect = f.matvec(&expect);
        }
        let mut ws = Workspace::for_matrix(&chain);
        let mut got = vec![0.0; n];
        chain.matvec_into(&x, &mut got, &mut ws);
        assert_eq!(got, expect, "chain matvec diverged");

        let y: Vec<f64> = (0..n).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let mut expect_t = y.clone();
        for f in factors.iter() {
            expect_t = f.rmatvec(&expect_t);
        }
        let mut got_t = vec![0.0; n];
        chain.rmatvec_into(&y, &mut got_t, &mut ws);
        assert_eq!(got_t, expect_t, "chain rmatvec diverged");

        // Accumulating scatter through the chain.
        let mut acc = vec![0.25; n];
        chain.rmatvec_add(&y, &mut acc, &mut ws);
        for (a, e) in acc.iter().zip(&expect_t) {
            assert!((a - (e + 0.25)).abs() < 1e-12, "chain rmatvec_add diverged");
        }
    }

    #[test]
    fn chain_scratch_is_smaller_than_nested_recursion() {
        let n = 64;
        let mut chain = Matrix::prefix(n);
        for _ in 0..7 {
            chain = Matrix::Product(Box::new(Matrix::suffix(n)), Box::new(chain));
        }
        let mut ws = Workspace::for_matrix(&chain);
        // 7 products: the nested recursion would need 7n for matvec; the
        // ping-pong plan needs 2n (the arena itself covers the widest of
        // the three directions, still well under the nested requirement).
        let plan = ws.plan_for(&chain);
        assert_eq!(plan.mv_scratch, 2 * n);
        assert_eq!(plan.rmv_scratch, 2 * n);
        assert!(chain.matvec_scratch() >= 7 * n);
        assert!(ws.capacity() < chain.matvec_scratch());
    }

    #[test]
    fn kron_matches_materialized() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, -1.0], vec![3.0, 1.0]]);
        let b = Matrix::from_rows(vec![vec![1.0, 0.0, 2.0], vec![-1.0, 1.0, 0.5]]);
        let k = Matrix::kron(a.clone(), b.clone());
        let kd = k.to_dense();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut expect = vec![0.0; 6];
        kd.matvec_into(&x, &mut expect);
        assert_eq!(k.matvec(&x), expect);

        let y: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3).collect();
        let mut expect_t = vec![0.0; 6];
        kd.rmatvec_into(&y, &mut expect_t);
        let got = k.rmatvec(&y);
        for (g, e) in got.iter().zip(&expect_t) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_and_transpose() {
        let m = Matrix::scaled(2.0, Matrix::prefix(5));
        assert_eq!(m.matvec(&x5()), vec![2.0, 6.0, 12.0, 20.0, 30.0]);
        let t = Matrix::Transpose(Box::new(Matrix::prefix(5)));
        assert_eq!(t.matvec(&x5()), Matrix::suffix(5).matvec(&x5()));
    }

    #[test]
    fn range_variant_dispatch() {
        let w = Matrix::range_queries(5, vec![(0, 5), (2, 3)]);
        assert_eq!(w.matvec(&x5()), vec![15.0, 3.0]);
    }

    #[test]
    fn three_way_kron_marginal() {
        // W13 = I ⊗ Total ⊗ I over a 2×3×2 domain (paper Example 7.5).
        let w = Matrix::kron_list(vec![
            Matrix::identity(2),
            Matrix::total(3),
            Matrix::identity(2),
        ]);
        assert_eq!(w.shape(), (4, 12));
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        // cell index = a*6 + b*2 + c; marginal over b.
        let mut expect = vec![0.0; 4];
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    expect[a * 2 + c] += x[a * 6 + b * 2 + c];
                }
            }
        }
        assert_eq!(w.matvec(&x), expect);
    }

    /// The parallel paths only engage above the plan-time work threshold;
    /// these cases are sized past it so `--features parallel` actually
    /// executes the threaded chunking (below-threshold evaluation stays
    /// serial and serves as the reference).
    #[test]
    fn large_union_matches_per_block_evaluation() {
        let n = 1usize << 13;
        let blocks = vec![
            Matrix::wavelet(n),
            Matrix::prefix(n),
            Matrix::scaled(0.5, Matrix::suffix(n)),
            Matrix::product(Matrix::prefix(n), Matrix::wavelet(n)),
        ];
        let u = Matrix::vstack(blocks.clone());
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        let got = u.matvec(&x);
        let expect: Vec<f64> = blocks.iter().flat_map(|b| b.matvec(&x)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn large_union_rmatvec_matches_per_block_scatter() {
        // Above the scatter threshold: rows = 4n ≥ 2^14 and rows ≥ cols.
        let n = 1usize << 12;
        let blocks = vec![
            Matrix::wavelet(n),
            Matrix::prefix(n),
            Matrix::scaled(0.5, Matrix::suffix(n)),
            Matrix::product(Matrix::prefix(n), Matrix::wavelet(n)),
        ];
        let u = Matrix::vstack(blocks.clone());
        let y: Vec<f64> = (0..u.rows())
            .map(|i| ((i * 19) % 11) as f64 - 5.0)
            .collect();
        let got = u.rmatvec(&y);
        // Serial per-block reference.
        let mut expect = vec![0.0; n];
        let mut offset = 0;
        for b in &blocks {
            let back = b.rmatvec(&y[offset..offset + b.rows()]);
            for (e, v) in expect.iter_mut().zip(&back) {
                *e += v;
            }
            offset += b.rows();
        }
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "union rmatvec diverged");
        }
        // The threaded merge must be deterministic: a second evaluation
        // through a fresh workspace is bit-identical.
        let got2 = u.rmatvec(&y);
        assert_eq!(got, got2, "threaded union rmatvec is nondeterministic");
        // And a *reused* (pool-warm) workspace must also be bit-identical:
        // stale accumulator contents in pool arenas would surface here.
        let mut ws = Workspace::for_matrix(&u);
        let mut out = vec![0.0; n];
        u.rmatvec_into(&y, &mut out, &mut ws);
        assert_eq!(got, out);
        u.rmatvec_into(&y, &mut out, &mut ws);
        assert_eq!(got, out, "pool reuse changed the scatter result");
    }

    #[test]
    fn large_kron_matches_materialized() {
        // na*(nb+mb) = 128*256 exceeds the parallel threshold in both
        // directions (and nb*(ma+na) the stage-2 column threshold).
        let a = Matrix::prefix(128);
        let b = Matrix::wavelet(128);
        let k = Matrix::kron(a, b);
        let sparse = Matrix::sparse(k.to_sparse());
        let x: Vec<f64> = (0..k.cols())
            .map(|i| ((i * 31) % 17) as f64 - 8.0)
            .collect();
        let got = k.matvec(&x);
        let expect = sparse.matvec(&x);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "kron matvec diverged");
        }
        let y: Vec<f64> = (0..k.rows())
            .map(|i| ((i * 7) % 23) as f64 - 11.0)
            .collect();
        let got_t = k.rmatvec(&y);
        let expect_t = sparse.rmatvec(&y);
        for (g, e) in got_t.iter().zip(&expect_t) {
            assert!((g - e).abs() < 1e-9, "kron rmatvec diverged");
        }
        let got_t2 = k.rmatvec(&y);
        assert_eq!(got_t, got_t2, "threaded kron rmatvec is nondeterministic");
        // Pool-warm reuse must match too (stage-2 panels live in arenas).
        let mut ws = Workspace::for_matrix(&k);
        let mut out = vec![0.0; k.cols()];
        k.rmatvec_into(&y, &mut out, &mut ws);
        assert_eq!(got_t, out);
        k.rmatvec_into(&y, &mut out, &mut ws);
        assert_eq!(got_t, out, "pool reuse changed the kron scatter result");
    }

    #[test]
    fn shared_workspace_reused_across_directions() {
        let m = Matrix::vstack(vec![
            Matrix::product(Matrix::prefix(6), Matrix::wavelet(6)),
            Matrix::kron(Matrix::total(2), Matrix::prefix(3)),
        ]);
        let mut ws = Workspace::for_matrix(&m);
        let cap_after_plan = ws.capacity();
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let mut out = vec![0.0; m.rows()];
        let mut back = vec![0.0; m.cols()];
        for _ in 0..3 {
            m.matvec_into(&x, &mut out, &mut ws);
            m.rmatvec_into(&out, &mut back, &mut ws);
        }
        // The planning pass sized the arena once; evaluation never grew it.
        assert_eq!(ws.capacity(), cap_after_plan);
        assert_eq!(out, m.matvec(&x));
        assert_eq!(back, m.rmatvec(&out));
        // And every lookup after the first was a cache hit.
        assert!(ws.plan_cache_builds() <= 1);
        assert!(ws.plan_cache_hits() >= 6);
    }
}
