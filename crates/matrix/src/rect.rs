//! Implicit 2-D rectangle-query workloads.
//!
//! The natural extension of [`crate::RangeQueries`] to two-dimensional
//! domains (paper §7.5: "the range query construction can be naturally
//! extended to multi-dimensional domains"). A query is an axis-aligned
//! rectangle over an `rows×cols` grid flattened row-major; products use 2-D
//! prefix sums and difference arrays, so `matvec`/`rmatvec`/column sums all
//! run in `O(n + m)`. This is the backbone of the QuadTree, UniformGrid and
//! AdaptiveGrid strategies.

/// A workload of `m` axis-aligned rectangle queries over an `rows×cols`
/// grid.
#[derive(Clone, Debug, PartialEq)]
pub struct RectQueries2D {
    rows: usize,
    cols: usize,
    /// Half-open rectangles `(r_lo, r_hi, c_lo, c_hi)`.
    rects: Vec<(u32, u32, u32, u32)>,
}

impl RectQueries2D {
    /// Builds a rectangle workload; panics on empty or out-of-bounds rects.
    pub fn new(rows: usize, cols: usize, rects: Vec<(usize, usize, usize, usize)>) -> Self {
        let rects = rects
            .into_iter()
            .map(|(r1, r2, c1, c2)| {
                assert!(
                    r1 < r2 && r2 <= rows && c1 < c2 && c2 <= cols,
                    "invalid rectangle [{r1},{r2})x[{c1},{c2}) for grid {rows}x{cols}"
                );
                (r1 as u32, r2 as u32, c1 as u32, c2 as u32)
            })
            .collect();
        RectQueries2D { rows, cols, rects }
    }

    /// Grid height.
    pub fn grid_rows(&self) -> usize {
        self.rows
    }

    /// Grid width.
    pub fn grid_cols(&self) -> usize {
        self.cols
    }

    /// Flattened domain size.
    pub fn domain(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of queries.
    pub fn num_queries(&self) -> usize {
        self.rects.len()
    }

    /// The underlying rectangles.
    pub fn rects(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        self.rects
            .iter()
            .map(|&(a, b, c, d)| (a as usize, b as usize, c as usize, d as usize))
    }

    /// Scratch scalars needed by the product kernels: one padded
    /// `(rows+1)×(cols+1)` prefix-sum or difference array.
    pub(crate) fn scratch_len(&self) -> usize {
        (self.rows + 1) * (self.cols + 1)
    }

    /// `out[k] = Σ x[rect_k]` via one 2-D prefix-sum pass.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        // xlint: allow(warm-path-alloc, reason = "ad-hoc entry point that owns its scratch; the planned evaluator reaches this type via the allocation-free matvec_rec variant")
        let mut scratch = vec![0.0; self.scratch_len()];
        self.matvec_rec(x, out, &mut scratch);
    }

    /// [`Self::matvec_into`] with caller-provided scratch (≥
    /// [`Self::scratch_len`] scalars); performs no allocation.
    pub(crate) fn matvec_rec(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(x.len(), self.domain(), "matvec dimension mismatch");
        assert_eq!(out.len(), self.rects.len(), "matvec output mismatch");
        let (r, c) = (self.rows, self.cols);
        // prefix[(i, j)] = sum over [0,i)×[0,j); padded to (r+1)×(c+1).
        let stride = c + 1;
        let prefix = &mut scratch[..(r + 1) * stride];
        prefix.fill(0.0);
        for i in 0..r {
            let mut rowacc = 0.0;
            for j in 0..c {
                rowacc += x[i * c + j];
                prefix[(i + 1) * stride + j + 1] = prefix[i * stride + j + 1] + rowacc;
            }
        }
        for (o, &(r1, r2, c1, c2)) in out.iter_mut().zip(&self.rects) {
            let (r1, r2, c1, c2) = (r1 as usize, r2 as usize, c1 as usize, c2 as usize);
            *o = prefix[r2 * stride + c2] - prefix[r1 * stride + c2] - prefix[r2 * stride + c1]
                + prefix[r1 * stride + c1];
        }
    }

    /// `out = Wᵀ y` via a 2-D difference array.
    pub fn rmatvec_into(&self, y: &[f64], out: &mut [f64]) {
        // xlint: allow(warm-path-alloc, reason = "ad-hoc entry point that owns its scratch; the planned evaluator reaches this type via the allocation-free rmatvec_rec variant")
        let mut scratch = vec![0.0; self.scratch_len()];
        self.rmatvec_rec(y, out, &mut scratch);
    }

    /// [`Self::rmatvec_into`] with caller-provided scratch (≥
    /// [`Self::scratch_len`] scalars); performs no allocation.
    pub(crate) fn rmatvec_rec(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(y.len(), self.rects.len(), "rmatvec dimension mismatch");
        assert_eq!(out.len(), self.domain(), "rmatvec output mismatch");
        self.accumulate(y.iter().copied(), out, scratch);
    }

    /// Exact column sums (entries are 0/1) in `O(n + m)`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.domain()];
        let mut scratch = vec![0.0; self.scratch_len()];
        self.accumulate(
            std::iter::repeat_n(1.0, self.rects.len()),
            &mut out,
            &mut scratch,
        );
        out
    }

    fn accumulate(&self, values: impl Iterator<Item = f64>, out: &mut [f64], scratch: &mut [f64]) {
        let (r, c) = (self.rows, self.cols);
        let stride = c + 1;
        let diff = &mut scratch[..(r + 1) * stride];
        diff.fill(0.0);
        for (&(r1, r2, c1, c2), v) in self.rects.iter().zip(values) {
            let (r1, r2, c1, c2) = (r1 as usize, r2 as usize, c1 as usize, c2 as usize);
            diff[r1 * stride + c1] += v;
            diff[r1 * stride + c2] -= v;
            diff[r2 * stride + c1] -= v;
            diff[r2 * stride + c2] += v;
        }
        // Two cumulative passes turn the difference array into cell values.
        for i in 0..r {
            let mut rowacc = 0.0;
            for j in 0..c {
                rowacc += diff[i * stride + j];
                let val = rowacc + if i > 0 { out[(i - 1) * c + j] } else { 0.0 };
                out[i * c + j] = val;
            }
        }
    }

    /// Materializes as `(row, col, value)` triplets.
    pub fn triplets(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for (k, (r1, r2, c1, c2)) in self.rects().enumerate() {
            for i in r1..r2 {
                for j in c1..c2 {
                    out.push((k, i * self.cols + j, 1.0));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn sample() -> RectQueries2D {
        RectQueries2D::new(
            4,
            5,
            vec![(0, 2, 0, 2), (1, 4, 2, 5), (0, 4, 0, 5), (2, 3, 1, 2)],
        )
    }

    fn x20() -> Vec<f64> {
        (0..20).map(|i| i as f64).collect()
    }

    #[test]
    fn matvec_matches_materialized() {
        let w = sample();
        let csr = CsrMatrix::from_triplets(w.num_queries(), w.domain(), &w.triplets());
        let x = x20();
        let mut got = vec![0.0; 4];
        w.matvec_into(&x, &mut got);
        let mut expect = vec![0.0; 4];
        csr.matvec_into(&x, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn rmatvec_matches_materialized() {
        let w = sample();
        let csr = CsrMatrix::from_triplets(w.num_queries(), w.domain(), &w.triplets());
        let y = [1.0, -2.0, 0.5, 3.0];
        let mut got = vec![0.0; 20];
        w.rmatvec_into(&y, &mut got);
        let mut expect = vec![0.0; 20];
        csr.rmatvec_into(&y, &mut expect);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12, "{got:?} vs {expect:?}");
        }
    }

    #[test]
    fn col_sums_match_materialized() {
        let w = sample();
        let csr = CsrMatrix::from_triplets(w.num_queries(), w.domain(), &w.triplets());
        assert_eq!(w.col_sums(), csr.abs_pow_col_sums(1));
    }

    #[test]
    #[should_panic(expected = "invalid rectangle")]
    fn rejects_empty_rect() {
        RectQueries2D::new(4, 4, vec![(1, 1, 0, 2)]);
    }
}
