//! Row-major dense matrices.
//!
//! Dense storage is the baseline representation in the paper's Fig. 4/5
//! ablations and the workhorse for small direct solves (Gram matrices,
//! Cholesky factors, strategy optimization in HDMM).

use crate::kernels;

/// A row-major dense matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An all-zero `rows×cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "dense buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        DenseMatrix { rows, cols, data }
    }

    /// Builds from a list of equal-length rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in &rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The n×n identity in dense form.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major value buffer.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major value buffer.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_slice_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `out = self · x`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output dimension mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = kernels::dot(row, x);
        }
    }

    /// `out = selfᵀ · y`.
    pub fn rmatvec_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "rmatvec dimension mismatch");
        assert_eq!(out.len(), self.cols, "rmatvec output dimension mismatch");
        out.fill(0.0);
        for (i, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            kernels::axpy(out, yi, row);
        }
    }

    /// The transpose as a new dense matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Dense matrix product `self · other`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both inputs.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                kernels::axpy(orow, a, brow);
            }
        }
        out
    }

    /// The Gram matrix `selfᵀ · self` (symmetric `cols×cols`).
    pub fn gram(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[j * self.cols..(j + 1) * self.cols];
                kernels::axpy(orow, a, row);
            }
        }
        out
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Column sums of `|a|^p` for p = 1 or 2 (sensitivity computations).
    pub fn abs_pow_col_sums(&self, p: u32) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += match p {
                    1 => v.abs(),
                    2 => v * v,
                    _ => v.abs().powi(p as i32),
                };
            }
        }
        sums
    }

    /// Maximum absolute difference to `other`; `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn matvec_and_rmatvec() {
        let m = sample();
        let mut y = vec![0.0; 2];
        m.matvec_into(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![6.0, 15.0]);
        let mut x = vec![0.0; 3];
        m.rmatvec_into(&[1.0, 1.0], &mut x);
        assert_eq!(x, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = sample();
        let b = DenseMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            DenseMatrix::from_rows(vec![vec![4.0, 5.0], vec![10.0, 11.0]])
        );
    }

    #[test]
    fn gram_is_at_a() {
        let a = sample();
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        assert_eq!(g, g2);
    }

    #[test]
    fn col_sums() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, -2.0], vec![-3.0, 4.0]]);
        assert_eq!(m.abs_pow_col_sums(1), vec![4.0, 6.0]);
        assert_eq!(m.abs_pow_col_sums(2), vec![10.0, 20.0]);
    }

    #[test]
    fn identity_matvec_is_copy() {
        let m = DenseMatrix::identity(3);
        let mut y = vec![0.0; 3];
        m.matvec_into(&[7.0, 8.0, 9.0], &mut y);
        assert_eq!(y, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_shape_mismatch_panics() {
        let m = sample();
        let mut y = vec![0.0; 2];
        m.matvec_into(&[1.0], &mut y);
    }
}
