//! Per-worker bounded work deques for the two-tier scheduler.
//!
//! Each pool worker owns one [`BoundedDeque`]: the owner pushes and pops
//! at the **tail** (LIFO — newest first, which keeps a worker's own
//! nested spawns cache-hot), while idle workers and joining callers steal
//! from the **head** (FIFO — oldest first, which is what makes queueing
//! fair: work that has waited longest runs next, so one session's burst
//! cannot indefinitely delay another's earlier packets).
//!
//! The ring is **preallocated at construction** and never grows: a push
//! onto a full deque fails and hands the job back to the dispatcher
//! (which falls back to the next worker's deque, then to running inline
//! on the caller). That bound is what keeps the scheduler's warm path
//! allocation-free — dispatching onto the deque moves the job's bytes
//! into an existing slot, nothing more.
//!
//! Synchronization is a plain [`Mutex`] around the ring indices: every
//! operation holds it for an index update plus one fixed-size move in or
//! out of a slot (a `Job` is ~30 words). The engine's contention regime —
//! a handful of workers, job bodies that run for microseconds to
//! milliseconds — makes a lock-free Chase–Lev deque measurable noise
//! here, while the mutex keeps the steal/pop race at `len == 1` trivially
//! correct (exactly one side wins the element; the other sees empty).

use std::mem::MaybeUninit;
use std::sync::Mutex;

/// A fixed-capacity ring deque: owner end at the tail (LIFO), thief end
/// at the head (FIFO). `T` is moved in and out by value; unconsumed
/// elements are dropped with the deque.
pub(crate) struct BoundedDeque<T: Send> {
    ring: Mutex<Ring<T>>,
}

struct Ring<T> {
    /// Preallocated storage; only `head..head+len` (mod capacity) is
    /// initialized.
    slots: Box<[MaybeUninit<T>]>,
    /// Index of the oldest element (the steal end).
    head: usize,
    /// Live element count; the tail is `(head + len) % capacity`.
    len: usize,
    /// High-water mark of `len` since construction, for
    /// `queue_depth_max` stats.
    depth_max: usize,
}

// SAFETY: all slot access happens under the `ring` mutex, and the
// initialized window `head..head+len` is maintained by every operation,
// so elements are moved in and out exactly once. `T: Send` is required
// because elements cross threads (owner push, thief pop).
unsafe impl<T: Send> Sync for BoundedDeque<T> {}

impl<T: Send> BoundedDeque<T> {
    /// Creates a deque with a fixed capacity (allocated once, here).
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity deque cannot hold work");
        let slots: Box<[MaybeUninit<T>]> = (0..capacity)
            // xlint: allow(warm-path-alloc, reason = "one-time ring preallocation at pool construction; every warm-path push/pop/steal reuses these slots")
            .map(|_| MaybeUninit::uninit())
            // xlint: allow(warm-path-alloc, reason = "one-time ring preallocation at pool construction; every warm-path push/pop/steal reuses these slots")
            .collect();
        BoundedDeque {
            ring: Mutex::new(Ring {
                slots,
                head: 0,
                len: 0,
                depth_max: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring<T>> {
        // Elements never run (and so never panic) while the ring lock is
        // held — panics cannot poison a half-updated ring — but recover
        // from stray poisoning anyway: the indices are always consistent
        // at lock release.
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Owner push at the tail. Returns the value back when the deque is
    /// full (the dispatcher's cue to try the next worker or run inline);
    /// never blocks, never allocates.
    pub(crate) fn push_tail(&self, value: T) -> Result<(), T> {
        let mut r = self.lock();
        if r.len == r.slots.len() {
            return Err(value);
        }
        let cap = r.slots.len();
        let idx = (r.head + r.len) % cap;
        r.slots[idx].write(value);
        r.len += 1;
        if r.len > r.depth_max {
            r.depth_max = r.len;
        }
        Ok(())
    }

    /// Owner pop at the tail (LIFO): the most recently pushed element.
    pub(crate) fn pop_tail(&self) -> Option<T> {
        let mut r = self.lock();
        if r.len == 0 {
            return None;
        }
        r.len -= 1;
        let cap = r.slots.len();
        let idx = (r.head + r.len) % cap;
        // SAFETY: `idx` was inside the initialized window before `len`
        // was decremented, and shrinking the window first means no other
        // accessor (all serialized by the mutex) can read it again.
        Some(unsafe { r.slots[idx].assume_init_read() })
    }

    /// Thief pop at the head (FIFO): the oldest element. Used by idle
    /// workers and by callers helping while they wait on a join.
    pub(crate) fn steal_head(&self) -> Option<T> {
        let mut r = self.lock();
        if r.len == 0 {
            return None;
        }
        let idx = r.head;
        let cap = r.slots.len();
        r.head = (r.head + 1) % cap;
        r.len -= 1;
        // SAFETY: `idx` was the initialized head; advancing `head` and
        // shrinking `len` under the mutex removes it from the window
        // before the lock is released, so it is read exactly once.
        Some(unsafe { r.slots[idx].assume_init_read() })
    }

    /// Current length (diagnostics only — stale by the time you read it).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lock().len
    }

    /// High-water mark of the queue depth since construction.
    pub(crate) fn depth_max(&self) -> usize {
        self.lock().depth_max
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop any elements still queued (a scheduler batch abandoned by
        // a panic unwinding past its owner).
        for k in 0..self.len {
            let idx = (self.head + k) % self.slots.len();
            // SAFETY: `head..head+len` is exactly the initialized window,
            // and drop has exclusive access.
            unsafe { self.slots[idx].assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn lifo_pop_fifo_steal() {
        let d = BoundedDeque::new(8);
        for v in [1u32, 2, 3, 4] {
            d.push_tail(v).unwrap();
        }
        assert_eq!(d.steal_head(), Some(1), "steal takes the oldest");
        assert_eq!(d.pop_tail(), Some(4), "pop takes the newest");
        assert_eq!(d.steal_head(), Some(2));
        assert_eq!(d.pop_tail(), Some(3));
        assert_eq!(d.pop_tail(), None);
        assert_eq!(d.steal_head(), None);
    }

    #[test]
    fn wraparound_preserves_order_and_bound() {
        let d = BoundedDeque::new(4);
        // Drive head around the ring several times with a mixed
        // push/steal pattern; order must stay FIFO at the head and the
        // capacity bound must hold at every wrap position.
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for round in 0..10 {
            let fill = 1 + (round % 4);
            for _ in 0..fill {
                d.push_tail(next_in).unwrap();
                next_in += 1;
            }
            // Overfill attempt when full must hand the value back.
            if fill == 4 {
                assert_eq!(d.push_tail(next_in), Err(next_in));
            }
            for _ in 0..fill {
                assert_eq!(d.steal_head(), Some(next_out));
                next_out += 1;
            }
        }
        assert_eq!(d.len(), 0);
        assert_eq!(d.depth_max(), 4);
    }

    #[test]
    fn concurrent_steal_vs_pop_at_len_one() {
        // The classic race: one element, owner popping the tail while a
        // thief steals the head. Exactly one side must win each element,
        // every element must surface exactly once, and nothing may be
        // duplicated — swept over many rounds to hit both outcomes.
        let d = Arc::new(BoundedDeque::new(2));
        let won = Arc::new(AtomicUsize::new(0));
        let rounds = 2000usize;
        // xlint: allow(determinism-thread, reason = "deque unit test: races a raw OS thread against the owner on purpose; the pool executor is not under test here")
        std::thread::scope(|s| {
            let thief = {
                let d = Arc::clone(&d);
                let won = Arc::clone(&won);
                move || {
                    for _ in 0..rounds {
                        while d.steal_head().is_none() {
                            std::hint::spin_loop();
                            if won.load(Ordering::Acquire) >= rounds {
                                return;
                            }
                        }
                        won.fetch_add(1, Ordering::AcqRel);
                    }
                }
            };
            let owner = {
                let d = Arc::clone(&d);
                let won = Arc::clone(&won);
                move || {
                    for v in 0..rounds as u64 {
                        d.push_tail(v).unwrap();
                        if d.pop_tail().is_some() {
                            won.fetch_add(1, Ordering::AcqRel);
                        }
                        // Wait until this element surfaced on one side
                        // before pushing the next, so exactly `rounds`
                        // elements flow through a len-0/1 deque.
                        while won.load(Ordering::Acquire) <= v as usize {
                            std::hint::spin_loop();
                        }
                    }
                }
            };
            s.spawn(thief);
            s.spawn(owner);
        });
        assert_eq!(
            won.load(Ordering::Acquire),
            rounds,
            "every element must surface exactly once across pop/steal"
        );
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn dropped_deque_drops_queued_elements() {
        struct Counting(Arc<AtomicUsize>);
        impl Drop for Counting {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d = BoundedDeque::new(4);
            for _ in 0..3 {
                let _ = d.push_tail(Counting(Arc::clone(&drops)));
            }
            let taken = d.steal_head();
            drop(taken);
            assert_eq!(drops.load(Ordering::Relaxed), 1);
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            3,
            "queued elements must be dropped with the deque"
        );
    }
}
