//! Observability counters for the two-tier scheduler.
//!
//! Everything here is monotonic process-lifetime counting — tests and
//! benches diff two snapshots to prove a path actually engaged (pooled
//! dispatch, queueing, stealing), and the future ops surface reads the
//! same numbers. Counter semantics are deliberately precise about the
//! claim/complete distinction:
//!
//! * [`PoolStats::dispatched`] counts **slot handoffs** — IDLE→CLAIMED
//!   CAS wins followed by arming a parked worker. It says nothing about
//!   the job having *run* yet, and it does not cover queued or stolen
//!   jobs at all.
//! * [`PoolStats::completed`] counts **finished jobs** on every path
//!   (slot, queued-then-popped, stolen, inline). Steal-path accounting
//!   cannot double-count against it: each job passes exactly one of
//!   `run_job` / `run_inline`, which is where the increment lives.

use std::sync::atomic::Ordering;

use super::bucket;

/// A snapshot of the pool's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker **slots claimed and armed** (handoffs to parked workers) —
    /// not completions: a just-armed job is counted here before it runs.
    /// Queued and stolen jobs never touch this counter; use
    /// [`completed`](Self::completed) for "how many jobs finished".
    pub dispatched: u64,
    /// Jobs placed on a per-worker deque because no worker slot was idle
    /// (the oversubscription path that used to run inline).
    pub queued: u64,
    /// Queued jobs taken from the **head** of another worker's deque (by
    /// an idle worker or a joining caller). Disjoint from owner pops.
    pub stolen: u64,
    /// Jobs run on the calling thread (single-chunk regions, stash-tail
    /// execution, every deque full, or pool size 0).
    pub inline: u64,
    /// Jobs that finished executing, on any path. The one counter that is
    /// safe to diff for "work done": `dispatched` counts claims,
    /// `queued`/`stolen` count queue transitions, and a single job can
    /// touch several of those — but it completes exactly once.
    pub completed: u64,
    /// High-water mark of any single worker deque's depth.
    pub queue_depth_max: usize,
    /// Bucket-layer packets submitted, indexed by
    /// [`bucket::Stage`] (`Transform`/`Measure`/`Infer`).
    pub packets_submitted: [u64; bucket::STAGES],
    /// Bucket-layer packets completed (or cancelled after a session
    /// fault), same indexing.
    pub packets_completed: [u64; bucket::STAGES],
    /// Workers currently accepting dispatch.
    pub workers: usize,
    /// Worker threads parked in the pool (the cap for
    /// [`super::set_workers`]).
    pub spawned: usize,
}

/// One worker's share of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Position in the pool (also its deque's identity for stealing).
    pub index: usize,
    /// Slot jobs this worker ran (its side of the `dispatched` handoffs).
    pub dispatched: u64,
    /// Jobs this worker stole from siblings' deque heads.
    pub stolen: u64,
    /// High-water mark of this worker's own deque depth.
    pub queue_depth_max: usize,
}

/// Current pool counters; tests and benches diff two snapshots to prove
/// the path under test (dispatch, queueing, stealing) actually engaged.
pub fn stats() -> PoolStats {
    let p = super::pool();
    let queue_depth_max = p
        .workers
        .iter()
        .map(|w| w.deque.depth_max())
        .max()
        .unwrap_or(0);
    PoolStats {
        dispatched: p.dispatched.load(Ordering::Relaxed),
        queued: p.queued.load(Ordering::Relaxed),
        stolen: p.stolen.load(Ordering::Relaxed),
        inline: p.inline.load(Ordering::Relaxed),
        completed: p.completed.load(Ordering::Relaxed),
        queue_depth_max,
        packets_submitted: bucket::packets_submitted(),
        packets_completed: bucket::packets_completed(),
        workers: super::workers(),
        spawned: p.workers.len(),
    }
}

/// Per-worker counter snapshots, in worker order. Cold diagnostics
/// surface (allocates a Vec); the warm paths never call it.
pub fn worker_stats() -> Vec<WorkerStats> {
    let p = super::pool();
    p.workers
        .iter()
        .enumerate()
        .map(|(index, w)| WorkerStats {
            index,
            dispatched: w.ran_slot.load(Ordering::Relaxed),
            stolen: w.stole.load(Ordering::Relaxed),
            queue_depth_max: w.deque.depth_max(),
        })
        .collect()
}
