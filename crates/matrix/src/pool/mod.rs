//! Process-wide persistent worker-pool executor for every threaded path.
//!
//! Until this module existed, each `parallel`-feature region paid
//! `std::thread::scope` per call: ~10µs of OS thread spawn/join per worker
//! plus the spawn harness's per-thread bookkeeping allocations (closure
//! box, join packet). That tax dominated threaded-small-tree latency and
//! was the one thing keeping the warm threaded paths from being literally
//! allocation-free. This executor replaces it with a fixed set of **parked
//! OS threads** and **preallocated per-worker job slots**:
//!
//! * [`scope`] is shaped like `std::thread::scope` — `pool::scope(|s|
//!   s.spawn(move || …))` — so parallel regions read the same as before,
//!   and spawned closures may borrow anything that outlives the scope.
//! * Dispatch copies the closure **by value into a fixed inline slot**
//!   (no boxing); a parked worker is claimed with one compare-and-swap
//!   and woken with one `unpark`. The warm dispatch path performs **zero
//!   heap allocations and zero thread creation** (gated by
//!   `tests/alloc_parallel.rs` with an every-size counting allocator).
//! * The scope keeps the most recently spawned job **stashed locally** and
//!   runs it on the calling thread at the end of the region: a
//!   single-chunk region therefore degrades to plain inline execution
//!   (no handoff at all), and a k-chunk region costs k−1 handoffs while
//!   the caller does the last chunk instead of parking.
//! * When no worker is idle (pool exhausted, nested regions) a job is
//!   **queued** on a per-worker bounded deque (`deque.rs`) instead of
//!   running inline: the owner pushes and pops LIFO at the tail, idle
//!   workers and joining callers steal FIFO from the head, so an
//!   oversubscribed burst from one session can no longer monopolize the
//!   caller while siblings starve — the oldest queued work runs next,
//!   whoever is free. Inline execution remains the final fallback (a
//!   pool deliberately sized to 0, or every deque full) and the
//!   stash-tail path below. Deadlock freedom now rests on **help-first
//!   joining**: every join loop runs queued jobs (own deque first, then
//!   stealing) instead of blind-parking, so the job a join waits on can
//!   always be executed by the waiter itself, and a slot job is still
//!   only ever armed on a worker that is parked in its dispatch loop.
//!
//! This module is the **packet layer** of the two-tier scheduler; the
//! **bucket layer** ([`bucket`]) adds stage ordering within a plan
//! (measure-before-infer) and round-robin fairness across concurrent
//! sessions on top of these deques. Counters for both layers are
//! exposed through [`stats`] (see [`PoolStats`] for the precise
//! claimed-vs-completed semantics of each counter).
//!
//! # Determinism
//!
//! The scheduler (both tiers) decides **where** and **in what order**
//! fixed chunks run, never **what** the work is.
//! Chunk geometry is fixed before dispatch — at plan time for matrix
//! evaluation ([`crate::Workspace`] plans record chunk sizes built from
//! [`configured_parallelism`], a process constant), and per call from the
//! same constant for the kernel batch paths — and every order-sensitive
//! combine (scatter merges, noise draws) happens sequentially on the
//! caller after the scope closes, in fixed chunk order. Running a chunk
//! on worker 3, worker 0 or inline on the caller — or queueing it and
//! having a thief steal it — executes the identical arithmetic on the
//! identical slice, so results are **bit-identical for every pool size
//! and every steal interleaving**, including 0. [`set_workers`] can be
//! changed at any time (benchmarks and the pool-size identity suites do)
//! without affecting any result, and the forced-steal hook
//! ([`set_force_steal`], env `EKTELO_POOL_FORCE_STEAL=1`) routes every
//! job through the steal path so the identity suites can pin the claim
//! for stealing specifically.
//!
//! # Configuration
//!
//! `EKTELO_POOL_WORKERS` (read once, at first use) sets both the number
//! of active workers and [`configured_parallelism`] — the parallelism
//! that chunk-geometry decisions use. Unset, both default to
//! `std::thread::available_parallelism()`. `EKTELO_POOL_WORKERS=0`
//! disables dispatch entirely (every region runs inline);
//! `EKTELO_POOL_WORKERS=1` fixes the geometry to a single chunk, making
//! threaded builds execute serially — the CI pool-determinism job runs
//! the threaded suites under `1`, `4` and the default to pin that the
//! answers never move.

use std::any::Any;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::Thread;

pub mod bucket;
mod deque;
mod stats;

pub use stats::{stats, worker_stats, PoolStats, WorkerStats};

use deque::BoundedDeque;

/// Hard upper bound on pool worker threads (and on
/// [`configured_parallelism`]); far above any realistic chunk count.
pub const MAX_WORKERS: usize = 64;

/// Words of inline closure storage per job slot. Every closure the
/// engine spawns captures a handful of slices and scalars (≤ ~12 words);
/// a closure that does not fit runs inline instead of allocating.
const TASK_WORDS: usize = 24;

/// Workers the pool keeps parked beyond the configured count, so
/// [`set_workers`] can raise the effective count at runtime (the
/// pool-size bit-identity suites do this on small machines). Parked
/// threads cost a stack apiece and no CPU.
const SPAWN_FLOOR: usize = 4;

/// Capacity of each per-worker deque, preallocated at pool construction.
/// Far above any chunk count a single region produces
/// (≤ [`MAX_WORKERS`]), and deep enough that dozens of concurrent
/// sessions queue without hitting the inline fallback.
const DEQUE_CAP: usize = 256;

// Worker slot states. IDLE workers are parked in their dispatch loop
// (never blocked inside a job), which is the deadlock-freedom invariant:
// an ARMED job always starts without waiting on anyone.
const IDLE: u8 = 0;
const CLAIMED: u8 = 1;
const ARMED: u8 = 2;
const RUNNING: u8 = 3;

type TaskData = [MaybeUninit<usize>; TASK_WORDS];

/// A type-erased job: the closure's bytes moved into inline storage, the
/// monomorphized invoker, and the scope awaiting its completion.
struct Job {
    data: TaskData,
    call: unsafe fn(*mut TaskData),
    scope: *const ScopeState,
}

// SAFETY: a `Job` only ever erases a closure that was required to be
// `Send` by `Scope::spawn`, and the `scope` pointer outlives the job (the
// scope cannot return until `pending` drains).
unsafe impl Send for Job {}

/// One pool worker: its dispatch state, its preallocated job slot and the
/// handle used to unpark it.
struct Worker {
    state: AtomicU8,
    slot: UnsafeCell<MaybeUninit<Job>>,
    thread: Thread,
    /// This worker's bounded deque: the worker pushes/pops LIFO at the
    /// tail; idle siblings and joining callers steal FIFO from the head.
    deque: BoundedDeque<Job>,
    /// Slot jobs this worker ran (its side of `dispatched` handoffs).
    ran_slot: AtomicU64,
    /// Jobs this worker stole from siblings' deque heads.
    stole: AtomicU64,
}

// SAFETY: `slot` is only written by a dispatcher that won the IDLE→CLAIMED
// CAS and only read by the worker after observing ARMED (Release/Acquire
// paired), so access is exclusive by protocol.
unsafe impl Sync for Worker {}

/// Per-scope completion state, allocated on the caller's stack.
struct ScopeState {
    /// Jobs handed to workers and not yet finished.
    pending: AtomicUsize,
    /// The scope's calling thread, unparked when `pending` drains.
    caller: Thread,
    /// First panic payload from any job (body panics take precedence).
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

struct Pool {
    workers: Box<[Worker]>,
    /// Workers `0..effective` accept dispatch; the rest stay parked
    /// (their deques remain valid steal targets, so shrinking can never
    /// strand queued work).
    effective: AtomicUsize,
    /// Slot handoffs (claims), not completions — see [`PoolStats`].
    dispatched: AtomicU64,
    inline: AtomicU64,
    /// Jobs placed on a deque (the oversubscription path).
    queued: AtomicU64,
    /// Jobs taken from a deque head by a non-owner.
    stolen: AtomicU64,
    /// Jobs finished on any path — the only safe "work done" counter.
    completed: AtomicU64,
    /// Round-robin cursor spreading non-worker enqueues across deques.
    rr: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

std::thread_local! {
    /// This thread's pool-worker index, or `usize::MAX` on non-workers.
    /// Lets dispatch prefer the own deque (LIFO locality) and join loops
    /// pop their own work before stealing.
    static WORKER_INDEX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Test-only forced-steal hook, also reachable via
/// `EKTELO_POOL_FORCE_STEAL=1`: dispatch skips the worker slots so every
/// job queues, and every dequeue goes through the steal end (workers
/// sweep siblings before their own deque). Results are bit-identical
/// either way — the identity suites run with this on to prove it.
static FORCE_STEAL: AtomicBool = AtomicBool::new(false);

fn env_force_steal() -> bool {
    static V: OnceLock<bool> = OnceLock::new();
    *V.get_or_init(|| std::env::var("EKTELO_POOL_FORCE_STEAL").is_ok_and(|s| s.trim() == "1"))
}

fn force_steal() -> bool {
    env_force_steal() || FORCE_STEAL.load(Ordering::Relaxed)
}

/// Enables or disables the forced-steal schedule (see the module docs).
/// Testing surface: never changes results, only where and via which end
/// of the deques jobs execute.
pub fn set_force_steal(on: bool) {
    FORCE_STEAL.store(on, Ordering::Relaxed);
}

/// `EKTELO_POOL_WORKERS`, parsed once for the process lifetime.
fn env_workers() -> Option<usize> {
    static V: OnceLock<Option<usize>> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("EKTELO_POOL_WORKERS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
    })
}

/// The process-constant parallelism that chunk-geometry decisions use:
/// `EKTELO_POOL_WORKERS` when set (clamped to `1..=`[`MAX_WORKERS`];
/// `0` reads as `1` — no chunking), otherwise the machine's
/// `available_parallelism`.
///
/// This is deliberately **not** [`workers`]: geometry must be a process
/// constant for cached plans to stay meaningful and for results to be
/// bit-identical across runtime [`set_workers`] changes, whereas the
/// effective worker count only steers where fixed chunks execute.
pub fn configured_parallelism() -> usize {
    static P: OnceLock<usize> = OnceLock::new();
    *P.get_or_init(|| match env_workers() {
        Some(n) => n.clamp(1, MAX_WORKERS),
        None => std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(MAX_WORKERS),
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let effective = match env_workers() {
            // 0 is honored here (fully inline) but reads as 1 for chunk
            // geometry — the only place the two notions differ.
            Some(n) => n.min(MAX_WORKERS),
            None => configured_parallelism(),
        };
        let spawn = effective.clamp(SPAWN_FLOOR, MAX_WORKERS);
        let workers: Box<[Worker]> = (0..spawn)
            .map(|i| {
                let handle = std::thread::Builder::new()
                    // xlint: allow(warm-path-alloc, reason = "one-time pool construction inside the OnceLock initializer; the warm path only ever re-reads the initialized pool")
                    .name(format!("ektelo-pool-{i}"))
                    .spawn(move || worker_main(i))
                    // xlint: allow(panic-policy, reason = "one-time process initialization: if the OS cannot spawn the pool's worker threads there is no degraded mode to fall back to")
                    .expect("failed to spawn pool worker thread");
                Worker {
                    state: AtomicU8::new(IDLE),
                    slot: UnsafeCell::new(MaybeUninit::uninit()),
                    // xlint: allow(warm-path-alloc, reason = "one-time pool construction inside the OnceLock initializer; Thread::clone is an Arc refcount bump")
                    thread: handle.thread().clone(),
                    deque: BoundedDeque::new(DEQUE_CAP),
                    ran_slot: AtomicU64::new(0),
                    stole: AtomicU64::new(0),
                }
            })
            // xlint: allow(warm-path-alloc, reason = "one-time pool construction inside the OnceLock initializer; the warm path only ever re-reads the initialized pool")
            .collect();
        // Resolve the forced-steal env flag here so its one-time read
        // (which allocates) never lands inside a counting-allocator gate.
        let _ = env_force_steal();
        Pool {
            workers,
            effective: AtomicUsize::new(effective),
            dispatched: AtomicU64::new(0),
            inline: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rr: AtomicUsize::new(0),
        }
    })
}

/// A worker's main loop: run whatever its slot was armed with, then
/// drain queued work (own deque first, stealing second), then park.
/// Workers never exit; they die with the process like any detached
/// thread.
fn worker_main(index: usize) {
    WORKER_INDEX.set(index);
    // Blocks until `pool()` finishes initializing, then never locks again.
    let w = &pool().workers[index];
    loop {
        match w.state.load(Ordering::Acquire) {
            ARMED => {
                w.state.store(RUNNING, Ordering::Relaxed);
                // SAFETY: ARMED (Acquire) pairs with the dispatcher's
                // Release store after writing the slot; the job is read
                // exactly once.
                let job = unsafe { (*w.slot.get()).assume_init_read() };
                run_job(job, false);
                w.ran_slot.fetch_add(1, Ordering::Relaxed);
                w.state.store(IDLE, Ordering::Release);
                continue;
            }
            IDLE => {
                // Claim RUNNING before touching queued work: a dispatcher
                // must never arm the slot of a worker that is busy inside
                // a (possibly joining) queued job — the deadlock-freedom
                // invariant is that an ARMED job only ever lands on a
                // worker parked in this dispatch loop.
                if w.state
                    .compare_exchange(IDLE, RUNNING, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    let did = drain_queue_work(index);
                    w.state.store(IDLE, Ordering::Release);
                    if did {
                        continue;
                    }
                } else {
                    // Lost the slot to a dispatcher mid-claim; loop to
                    // observe the ARMED store (or park on its unpark).
                    continue;
                }
            }
            _ => {}
        }
        std::thread::park();
    }
}

/// Runs queued jobs from worker `index`'s position: its own deque first
/// (newest-first — nested spawns stay cache-hot), then one steal sweep
/// over every sibling. Returns whether anything ran. Under the
/// forced-steal schedule the order inverts (steal siblings first) and
/// even the own deque is taken from the steal end, so every queued job
/// deterministically runs as a stolen packet.
fn drain_queue_work(index: usize) -> bool {
    let p = pool();
    let w = &p.workers[index];
    let mut did = false;
    loop {
        if force_steal() {
            if steal_one(p, Some(index)) {
                did = true;
                continue;
            }
            if let Some(job) = w.deque.steal_head() {
                p.stolen.fetch_add(1, Ordering::Relaxed);
                w.stole.fetch_add(1, Ordering::Relaxed);
                run_job(job, true);
                did = true;
                continue;
            }
            return did;
        }
        if let Some(job) = w.deque.pop_tail() {
            run_job(job, false);
            did = true;
            continue;
        }
        if steal_one(p, Some(index)) {
            did = true;
            continue;
        }
        return did;
    }
}

/// One steal attempt across every sibling deque — all spawned workers,
/// not just the active ones, so a [`set_workers`] shrink can never strand
/// queued jobs. Takes the oldest job (FIFO head) and runs it.
fn steal_one(p: &Pool, thief: Option<usize>) -> bool {
    let n = p.workers.len();
    let base = thief.map_or(0, |t| t + 1);
    for k in 0..n {
        let idx = (base + k) % n;
        if Some(idx) == thief {
            continue;
        }
        if let Some(job) = p.workers[idx].deque.steal_head() {
            p.stolen.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = thief {
                p.workers[t].stole.fetch_add(1, Ordering::Relaxed);
            }
            run_job(job, true);
            return true;
        }
    }
    false
}

/// Help-first joining: runs one queued job on the current thread — the
/// own deque when the caller is a pool worker, else stealing the oldest
/// job from any deque. Returns whether a job ran. Every join loop calls
/// this before parking, which is what makes queueing deadlock-free: the
/// job a join is waiting on can always be executed by the waiter itself
/// (including nested scopes running on workers).
pub(crate) fn help_queue_work() -> bool {
    let p = pool();
    let own = WORKER_INDEX.get();
    if own != usize::MAX {
        let w = &p.workers[own];
        if force_steal() {
            if let Some(job) = w.deque.steal_head() {
                p.stolen.fetch_add(1, Ordering::Relaxed);
                w.stole.fetch_add(1, Ordering::Relaxed);
                run_job(job, true);
                return true;
            }
        } else if let Some(job) = w.deque.pop_tail() {
            run_job(job, false);
            return true;
        }
        return steal_one(p, Some(own));
    }
    steal_one(p, None)
}

/// Runs a job and signals its scope; `stolen` marks jobs taken from a
/// deque by a non-owner (and, under the forced-steal schedule, every
/// deque-sourced job). Panics are caught and deferred to the scope's
/// caller.
fn run_job(mut job: Job, stolen: bool) {
    let scope = job.scope;
    let result = catch_unwind(AssertUnwindSafe(|| {
        if stolen {
            // The steal path's own audited fault site: a chaos schedule
            // can kill specifically a stolen packet and assert the budget
            // ledger survives (`fault_injection.rs` sweeps it). Inside
            // the catch for the same reason as `pool::job` below.
            crate::failpoints::panic_if("pool::steal");
        }
        // Injected pool-job fault (counted before the closure runs, so an
        // armed hit skips the job entirely — its captured bytes are never
        // consumed, which is fine: engine closures capture only references
        // and scalars, never owning allocations).
        crate::failpoints::panic_if("pool::job");
        // SAFETY: `job.call` was instantiated by `erase` for exactly the
        // type whose bytes live in `job.data`; each job is consumed once.
        unsafe { (job.call)(&mut job.data) }
    }));
    pool().completed.fetch_add(1, Ordering::Relaxed);
    // SAFETY: the scope outlives the job — `scope()` cannot return while
    // `pending` counts it. The caller handle is cloned *before* the
    // decrement because the decrement is what releases the scope's frame.
    unsafe {
        if let Err(payload) = result {
            store_panic(&*scope, payload);
        }
        // xlint: allow(warm-path-alloc, reason = "Thread::clone is an Arc refcount bump, not a heap allocation; the handle must be taken before the decrement releases the scope's frame")
        let caller = (*scope).caller.clone();
        if (*scope).pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            caller.unpark();
        }
    }
}

/// Runs a job on the calling thread (single-chunk regions, pool
/// exhaustion, pool size 0). Panics are deferred like worker panics so
/// already-dispatched siblings still complete before the scope unwinds.
fn run_inline(state: &ScopeState, mut job: Job) {
    pool().inline.fetch_add(1, Ordering::Relaxed);
    let result = catch_unwind(AssertUnwindSafe(|| {
        // Same site as `run_job`: every slot-backed job passes exactly one
        // of the two, so the site's total hit count per region is the job
        // count — invariant across pool sizes.
        crate::failpoints::panic_if("pool::job");
        // SAFETY: same contract as `run_job` — `job.call` matches the
        // erased type in `job.data`; this is the job's single consumption.
        unsafe { (job.call)(&mut job.data) }
    }));
    pool().completed.fetch_add(1, Ordering::Relaxed);
    if let Err(payload) = result {
        store_panic(state, payload);
    }
}

/// Inline path for closures too large for the preallocated slot: run now,
/// on the caller, deferring any panic like every other job path.
fn run_oversized<F: FnOnce()>(state: &ScopeState, f: F) {
    let p = pool();
    p.inline.fetch_add(1, Ordering::Relaxed);
    let result = catch_unwind(AssertUnwindSafe(f));
    p.completed.fetch_add(1, Ordering::Relaxed);
    if let Err(payload) = result {
        store_panic(state, payload);
    }
}

fn store_panic(state: &ScopeState, payload: Box<dyn Any + Send + 'static>) {
    let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
    if slot.is_none() {
        *slot = Some(payload);
    }
}

/// Tries to hand `job` to an idle worker. Returns the job back on
/// failure; never waits.
fn try_dispatch(job: Job) -> Option<Job> {
    let p = pool();
    let n = p.effective.load(Ordering::Relaxed).min(p.workers.len());
    for w in &p.workers[..n] {
        if w.state
            .compare_exchange(IDLE, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // Count the job before arming it so the worker's decrement
            // can never observe a counter it was not added to.
            // SAFETY: the scope outlives its jobs (`scope()` parks until
            // `pending` drains), and winning the IDLE→CLAIMED CAS above
            // grants exclusive write access to this worker's slot until
            // the ARMED store hands it to the worker.
            unsafe { (*job.scope).pending.fetch_add(1, Ordering::Relaxed) };
            // SAFETY: as above — slot access is exclusive post-CAS.
            unsafe { (*w.slot.get()).write(job) };
            w.state.store(ARMED, Ordering::Release);
            w.thread.unpark();
            p.dispatched.fetch_add(1, Ordering::Relaxed);
            return None;
        }
    }
    Some(job)
}

/// Tries to place `job` on a worker deque. Returns the job back when the
/// pool is sized to 0 or every deque is full; never waits.
fn try_enqueue(mut job: Job) -> Option<Job> {
    let p = pool();
    let n = p.effective.load(Ordering::Relaxed).min(p.workers.len());
    if n == 0 {
        return Some(job);
    }
    // Count the job into its scope BEFORE it becomes visible in any
    // deque: a thief could otherwise run it and drive `pending` below
    // zero.
    // SAFETY: the scope outlives its jobs — every join loop parks until
    // `pending` drains, and a queued job was counted here first.
    unsafe { (*job.scope).pending.fetch_add(1, Ordering::Relaxed) };
    // A worker queues to its own deque first: LIFO pops serve its nested
    // spawns next, cache-hot, without a handoff.
    let own = WORKER_INDEX.get();
    if own != usize::MAX && own < p.workers.len() {
        match p.workers[own].deque.push_tail(job) {
            Ok(()) => {
                p.queued.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(back) => job = back,
        }
    }
    // Non-workers (and a worker whose own deque is full) spread across
    // the active deques round-robin, so concurrent sessions interleave
    // instead of piling onto worker 0.
    let start = p.rr.fetch_add(1, Ordering::Relaxed);
    for k in 0..n {
        let idx = (start + k) % n;
        if idx == own {
            continue;
        }
        match p.workers[idx].deque.push_tail(job) {
            Ok(()) => {
                p.queued.fetch_add(1, Ordering::Relaxed);
                p.workers[idx].thread.unpark();
                return None;
            }
            Err(back) => job = back,
        }
    }
    // Every deque full: the job never became visible — take the count
    // back and let the caller run it inline. (The transient nonzero
    // `pending` is harmless: only this thread joins on the scope, and it
    // is here, not parked.)
    // SAFETY: as above.
    unsafe { (*job.scope).pending.fetch_sub(1, Ordering::Relaxed) };
    Some(job)
}

/// Submission chokepoint for every sized job: an idle worker's slot if
/// one exists, else a worker deque (oversubscription **queues** instead
/// of running inline — the cross-session fairness rule), else inline on
/// the caller as the final fallback. Under the forced-steal schedule the
/// slot fast path is skipped so every job travels through a deque.
fn submit_job(state: &ScopeState, job: Job) {
    let job = if force_steal() {
        Some(job)
    } else {
        try_dispatch(job)
    };
    if let Some(job) = job {
        if let Some(job) = try_enqueue(job) {
            run_inline(state, job);
        }
    }
}

/// A dispatch handle into one [`scope`] region, mirroring
/// `std::thread::Scope`: jobs spawned through it may borrow anything
/// that outlives the scope (`'env` data), and the region does not end
/// until every job has run.
pub struct Scope<'scope, 'env: 'scope> {
    state: &'scope ScopeState,
    /// The most recently spawned job, kept local so the last chunk runs
    /// on the caller and single-job regions never touch a worker.
    stash: &'scope UnsafeCell<Option<Job>>,
    /// Invariance over both lifetimes, exactly as `std::thread::Scope`.
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submits `f` to the pool. The closure runs on a parked worker when
    /// one is idle; otherwise it is **queued** on a worker deque (run
    /// later by that worker, a stealing sibling, or this caller helping
    /// at join). It runs inline on the caller only when it is the
    /// region's only job, when the pool is sized to 0 or every deque is
    /// full, or when its captures exceed the preallocated slot — in
    /// every case before [`scope`] returns, with no heap allocation on
    /// any path, and with no effect on the computed result.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if std::mem::size_of::<F>() <= std::mem::size_of::<TaskData>()
            && std::mem::align_of::<F>() <= std::mem::align_of::<usize>()
        {
            // SAFETY: `F: Send + 'scope`, and `scope()` cannot return
            // before the erased bytes have been consumed exactly once.
            let job = unsafe { erase(f, self.state) };
            let prev = unsafe { &mut *self.stash.get() }.replace(job);
            if let Some(prev) = prev {
                submit_job(self.state, prev);
            }
        } else {
            // Oversized captures: run now, on the caller, rather than
            // box. (No engine closure hits this; it keeps `spawn` total.)
            run_oversized(self.state, f);
        }
    }
}

/// Erases `f` into a [`Job`] by moving its bytes into the inline slot.
///
/// SAFETY: caller guarantees `F` fits `TaskData` (checked by `spawn`),
/// is `Send`, and outlives the scope; the job must run exactly once.
unsafe fn erase<F: FnOnce()>(f: F, state: &ScopeState) -> Job {
    unsafe fn call<F: FnOnce()>(data: *mut TaskData) {
        let f = unsafe { (data as *mut F).read() };
        f();
    }
    let mut data: TaskData = [MaybeUninit::uninit(); TASK_WORDS];
    // SAFETY: caller guarantees `F` fits `TaskData` and its alignment
    // divides the word alignment, so the write is in bounds and aligned.
    unsafe { (data.as_mut_ptr() as *mut F).write(f) };
    Job {
        data,
        call: call::<F>,
        scope: state,
    }
}

/// Runs `f` with a [`Scope`] whose spawned jobs execute on the persistent
/// worker pool, returning `f`'s result after **every** spawned job has
/// finished — the drop-in replacement for `std::thread::scope` in all
/// `parallel`-feature regions.
///
/// Guarantees, in the image of `std::thread::scope`:
///
/// * every job spawned through the scope runs before `scope` returns
///   (even if `f` panics — the panic is re-raised after the join);
/// * a panicking job does not tear anything down mid-region: the first
///   payload is re-raised from `scope` once all jobs have completed;
/// * jobs may borrow `'env` data shared or mutably-disjointly, exactly
///   like scoped threads.
///
/// Unlike `std::thread::scope`, the warm path creates no threads and
/// performs no allocations, and a region that spawns a single job never
/// leaves the calling thread.
pub fn scope<'env, T, F>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let state = ScopeState {
        pending: AtomicUsize::new(0),
        caller: std::thread::current(),
        panic: Mutex::new(None),
    };
    let stash = UnsafeCell::new(None);
    let scope = Scope {
        state: &state,
        stash: &stash,
        _scope: PhantomData,
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // The caller executes the last (or only) job itself…
    // SAFETY: `f` has returned, so no `Scope::spawn` can touch the stash
    // concurrently; the caller is its only remaining accessor.
    if let Some(job) = unsafe { &mut *stash.get() }.take() {
        run_inline(&state, job);
    }
    // …then joins help-first: queued jobs (its own, or anyone's) run on
    // this thread instead of blind-parking, which is both the fairness
    // mechanism and what keeps queueing deadlock-free. The token-based
    // park protocol makes the final wait race-free: a completion that
    // lands between the check and the park leaves a token that makes the
    // park return immediately.
    while state.pending.load(Ordering::Acquire) != 0 {
        if !help_queue_work() {
            std::thread::park();
        }
    }
    let job_panic = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match result {
        Err(body_panic) => resume_unwind(body_panic),
        Ok(value) => {
            if let Some(payload) = job_panic {
                resume_unwind(payload);
            }
            value
        }
    }
}

// Result-slot protocol states for the typed scope. A slot starts EMPTY,
// the job's single Release store publishes READY, and `TypedHandle::take`
// claims it with a READY→TAKEN CAS — so a take before `join`, or after a
// panicked job, fails loudly instead of reading uninitialized memory.
const SLOT_EMPTY: u8 = 0;
const SLOT_READY: u8 = 1;
const SLOT_TAKEN: u8 = 2;

/// A preallocated landing slot for one typed job's return value.
///
/// [`typed_scope`] keeps a fixed array of these on the caller's stack —
/// one per possible spawn — so returning a value from a pool job costs no
/// allocation and no locking: the job writes the value and flips the
/// slot's state with one Release store.
pub struct ResultSlot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the slot protocol gives exclusive access by construction — the
// value cell is written only by the one job that owns the slot (before
// its READY store) and read only by the one `take` that wins the
// READY→TAKEN CAS (after it). `T: Send` is required because the value
// crosses from a worker thread back to the caller.
unsafe impl<T: Send> Sync for ResultSlot<T> {}

impl<T> ResultSlot<T> {
    fn new() -> Self {
        ResultSlot {
            state: AtomicU8::new(SLOT_EMPTY),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

impl<T> Drop for ResultSlot<T> {
    fn drop(&mut self) {
        // A READY value whose handle was never consumed still gets
        // dropped (we have `&mut self`, so the scope has already joined).
        // SAFETY: READY means the owning job's Release store published a
        // fully written value, and no `take` claimed it (state ≠ TAKEN).
        if *self.state.get_mut() == SLOT_READY {
            unsafe { self.value.get_mut().assume_init_drop() };
        }
    }
}

/// The receipt for one typed job: redeem it with [`TypedHandle::take`]
/// after [`TypedScope::join`] to get the job's return value.
pub struct TypedHandle<'scope, T> {
    slot: &'scope ResultSlot<T>,
}

impl<T> TypedHandle<'_, T> {
    /// Whether the job has finished and its value is still unclaimed.
    pub fn is_ready(&self) -> bool {
        self.slot.state.load(Ordering::Acquire) == SLOT_READY
    }

    /// Consumes the handle and returns the job's value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not ready — taking before
    /// [`TypedScope::join`], or taking the handle of a job that panicked
    /// (the job's own panic also resurfaces when the scope closes).
    pub fn take(self) -> T {
        match self.slot.state.compare_exchange(
            SLOT_READY,
            SLOT_TAKEN,
            Ordering::Acquire,
            Ordering::Acquire,
        ) {
            // SAFETY: winning the READY→TAKEN CAS proves the owning job
            // wrote the value (Release/Acquire paired) and grants this
            // call exclusive right to read it, exactly once.
            Ok(_) => unsafe { (*self.slot.value.get()).assume_init_read() },
            // xlint: allow(panic-policy, reason = "documented API contract (see the Panics section): taking before join, or taking a panicked job's handle, is a caller bug")
            Err(_) => panic!(
                "TypedHandle::take: value not ready (take() before join(), \
                 or the job panicked)"
            ),
        }
    }
}

/// A dispatch handle into one [`typed_scope`] region: like [`Scope`], but
/// spawned closures **return values**, redeemed through
/// [`TypedHandle`]s after an explicit [`TypedScope::join`]. All jobs in
/// one region return the same type `T` (they land in a homogeneous
/// preallocated slot array).
pub struct TypedScope<'scope, 'env: 'scope, T: Send> {
    state: &'scope ScopeState,
    /// Last spawned job, run by the caller at `join` — same single-chunk
    /// degradation as [`Scope`].
    stash: &'scope UnsafeCell<Option<Job>>,
    slots: &'scope [ResultSlot<T>; MAX_WORKERS],
    /// Next unclaimed slot index (slots are claimed in spawn order, which
    /// is what makes fixed-order merges of the results trivial).
    next: &'scope std::cell::Cell<usize>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env, T: Send> TypedScope<'scope, 'env, T> {
    /// Submits `f` to the pool and returns the handle that will hold its
    /// value. Placement mirrors [`Scope::spawn`] exactly (worker, inline
    /// fallback, caller-run stash tail, oversized-capture inline path) —
    /// none of which affects the value produced.
    ///
    /// # Panics
    ///
    /// Panics if the region spawns more than [`MAX_WORKERS`] jobs (the
    /// preallocated slot array is full; chunk counts are bounded by
    /// [`configured_parallelism`], which is far below this).
    pub fn spawn<F>(&self, f: F) -> TypedHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
    {
        let idx = self.next.get();
        assert!(
            idx < MAX_WORKERS,
            "typed_scope: spawned more jobs than preallocated result slots"
        );
        self.next.set(idx + 1);
        let slot = &self.slots[idx];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_EMPTY);
        let task = move || {
            let v = f();
            // SAFETY: this job is the slot's unique owner; the Release
            // store below is what publishes the write to `take`.
            unsafe { (*slot.value.get()).write(v) };
            slot.state.store(SLOT_READY, Ordering::Release);
        };
        if std::mem::size_of_val(&task) <= std::mem::size_of::<TaskData>()
            && std::mem::align_of_val(&task) <= std::mem::align_of::<usize>()
        {
            // SAFETY: the wrapper is `Send + 'scope` (it captures `f` and
            // a `'scope` slot reference), and `typed_scope` cannot return
            // before the erased bytes are consumed exactly once.
            let job = unsafe { erase(task, self.state) };
            let prev = unsafe { &mut *self.stash.get() }.replace(job);
            if let Some(prev) = prev {
                submit_job(self.state, prev);
            }
        } else {
            run_oversized(self.state, task);
        }
        TypedHandle { slot }
    }

    /// Blocks until every job spawned so far has finished (running the
    /// stashed tail job on the calling thread first). After `join`
    /// returns, every handle spawned before it is ready. Callable
    /// repeatedly; spawning again after a `join` starts a new batch.
    pub fn join(&self) {
        // SAFETY: `TypedScope` is `!Sync` (Cell fields), so `join` and
        // `spawn` are serialized on the one caller thread that owns the
        // stash; workers never touch it.
        if let Some(job) = unsafe { &mut *self.stash.get() }.take() {
            run_inline(self.state, job);
        }
        while self.state.pending.load(Ordering::Acquire) != 0 {
            if !help_queue_work() {
                std::thread::park();
            }
        }
    }
}

/// Runs `f` with a [`TypedScope`]: the value-returning variant of
/// [`scope`], built for chunked reductions — spawn one job per fixed
/// chunk, [`TypedScope::join`], then merge the [`TypedHandle`] values in
/// spawn order on the caller. The result slots live in this call's stack
/// frame, so the whole round trip (dispatch, return, merge) allocates
/// nothing.
///
/// Joins all jobs before returning even if `f` panics or forgets to call
/// `join`; job panics resurface here after every job has completed, with
/// a body panic taking precedence — the same contract as [`scope`].
pub fn typed_scope<'env, T, R, F>(f: F) -> R
where
    T: Send,
    F: for<'scope> FnOnce(&'scope TypedScope<'scope, 'env, T>) -> R,
{
    let state = ScopeState {
        pending: AtomicUsize::new(0),
        caller: std::thread::current(),
        panic: Mutex::new(None),
    };
    let stash = UnsafeCell::new(None);
    let slots: [ResultSlot<T>; MAX_WORKERS] = std::array::from_fn(|_| ResultSlot::new());
    let next = std::cell::Cell::new(0);
    let ts = TypedScope {
        state: &state,
        stash: &stash,
        slots: &slots,
        next: &next,
        _scope: PhantomData,
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&ts)));
    // SAFETY: `f` has returned, so no `TypedScope::spawn`/`join` can touch
    // the stash concurrently; the caller is its only remaining accessor.
    if let Some(job) = unsafe { &mut *stash.get() }.take() {
        run_inline(&state, job);
    }
    while state.pending.load(Ordering::Acquire) != 0 {
        if !help_queue_work() {
            std::thread::park();
        }
    }
    let job_panic = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match result {
        Err(body_panic) => resume_unwind(body_panic),
        Ok(value) => {
            if let Some(payload) = job_panic {
                resume_unwind(payload);
            }
            value
        }
    }
}

/// Number of workers currently accepting dispatch (0 = fully inline).
pub fn workers() -> usize {
    let p = pool();
    p.effective.load(Ordering::Relaxed).min(p.workers.len())
}

/// Sets the number of workers accepting dispatch and returns the value
/// actually applied (capped by the threads spawned at pool creation —
/// at least 4, at most [`MAX_WORKERS`]).
///
/// Changing this **never changes results** — chunk geometry is fixed by
/// [`configured_parallelism`], a process constant, and all merges are
/// fixed-order — it only changes where the fixed chunks execute. The
/// pool-size bit-identity suites sweep this across 1, 2 and the full
/// pool to pin exactly that.
pub fn set_workers(n: usize) -> usize {
    let p = pool();
    let applied = n.min(p.workers.len());
    p.effective.store(applied, Ordering::Relaxed);
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Tests that resize the pool must not interleave (the effective
    /// count is process-global).
    static RESIZE: Mutex<()> = Mutex::new(());

    fn resize_lock() -> std::sync::MutexGuard<'static, ()> {
        RESIZE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn single_job_runs_inline_without_dispatch() {
        let _serial = resize_lock();
        // A zero-worker pool forces the point: the job can only run
        // inline, and a single-chunk region completes without any worker.
        let prev = workers();
        set_workers(0);
        let before = stats();
        let mut out = 0usize;
        scope(|s| s.spawn(|| out = 7));
        set_workers(prev);
        assert_eq!(out, 7);
        let after = stats();
        assert!(after.inline > before.inline);
    }

    #[test]
    fn jobs_write_disjoint_slots_and_all_run() {
        let _serial = resize_lock();
        let mut slots = vec![0usize; 16];
        scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i + 1);
            }
        });
        assert_eq!(slots, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn results_identical_across_pool_sizes_including_zero() {
        let _serial = resize_lock();
        let prev = workers();
        let run = || {
            let mut slots = vec![0.0f64; 8];
            scope(|s| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    s.spawn(move || *slot = (0..100).map(|k| ((i * 100 + k) as f64).sqrt()).sum());
                }
            });
            slots
        };
        let reference = run();
        for size in [0, 1, 2, MAX_WORKERS] {
            set_workers(size);
            assert_eq!(run(), reference, "pool size {size} changed results");
        }
        set_workers(prev);
    }

    #[test]
    fn scope_returns_body_value_after_jobs_finish() {
        let _serial = resize_lock();
        let counter = AtomicUsize::new(0);
        let v = scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(v, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scopes_on_workers_complete() {
        let _serial = resize_lock();
        let mut outer = [0usize; 6];
        scope(|s| {
            for (i, slot) in outer.iter_mut().enumerate() {
                s.spawn(move || {
                    // A nested region inside a pool job: dispatch falls
                    // back to idle workers or inline, never deadlocks.
                    let mut inner = [0usize; 4];
                    scope(|s2| {
                        for (j, islot) in inner.iter_mut().enumerate() {
                            s2.spawn(move || *islot = j + 1);
                        }
                    });
                    *slot = i + inner.iter().sum::<usize>();
                });
            }
        });
        for (i, v) in outer.iter().enumerate() {
            assert_eq!(*v, i + 10);
        }
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_complete() {
        let _serial = resize_lock();
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..4 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "a job panic must surface from scope()");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            4,
            "sibling jobs must complete before the panic propagates"
        );
    }

    #[test]
    fn panic_in_stolen_packet_propagates_after_siblings_complete() {
        // The scope() panic contract must hold on the thief path too:
        // with forced stealing every spawned job queues and executes via
        // a deque steal, and a panicking stolen packet still surfaces
        // from scope() only after every sibling packet has run.
        let _serial = resize_lock();
        let prev = workers();
        set_workers(pool().workers.len().max(1));
        set_force_steal(true);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("stolen boom"));
                for _ in 0..4 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        set_force_steal(false);
        set_workers(prev);
        assert!(
            result.is_err(),
            "a stolen packet's panic must surface from scope()"
        );
        assert_eq!(
            finished.load(Ordering::Relaxed),
            4,
            "sibling packets must complete before the panic propagates"
        );
        // The pool is not wedged: a fresh region still runs to completion.
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for i in 0..4 {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn oversized_captures_run_inline() {
        let _serial = resize_lock();
        let out = AtomicUsize::new(0);
        let out_ref = &out;
        scope(|s| {
            for _ in 0..2 {
                let big = [[1.0f64; 64]; 8]; // 4 KiB by value: exceeds the slot
                s.spawn(move || {
                    let v = big.iter().flatten().sum::<f64>() as usize;
                    out_ref.fetch_add(v, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(out.load(Ordering::Relaxed), 1024);
    }

    #[test]
    fn forced_steal_queues_and_steals_with_identical_results() {
        let _serial = resize_lock();
        let prev = workers();
        set_workers(pool().workers.len());
        let run = || {
            let mut slots = vec![0.0f64; 12];
            scope(|s| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    s.spawn(move || *slot = (0..200).map(|k| ((i * 37 + k) as f64).sqrt()).sum());
                }
            });
            slots
        };
        let reference = run();
        let before = stats();
        set_force_steal(true);
        let forced = run();
        set_force_steal(false);
        let after = stats();
        set_workers(prev);
        assert_eq!(forced, reference, "forced stealing changed results");
        assert!(
            after.queued > before.queued,
            "forced-steal spawns must queue"
        );
        assert!(after.stolen > before.stolen, "queued jobs must run stolen");
        assert!(after.completed > before.completed);
        assert!(after.queue_depth_max >= 1);
    }

    #[test]
    fn nested_scopes_complete_under_forced_steal() {
        let _serial = resize_lock();
        set_force_steal(true);
        let mut outer = [0usize; 4];
        scope(|s| {
            for (i, slot) in outer.iter_mut().enumerate() {
                s.spawn(move || {
                    let mut inner = [0usize; 3];
                    scope(|s2| {
                        for (j, islot) in inner.iter_mut().enumerate() {
                            s2.spawn(move || *islot = j + 1);
                        }
                    });
                    *slot = i + inner.iter().sum::<usize>();
                });
            }
        });
        set_force_steal(false);
        for (i, v) in outer.iter().enumerate() {
            assert_eq!(*v, i + 6);
        }
    }

    #[test]
    fn completed_counts_every_path() {
        let _serial = resize_lock();
        let before = stats();
        let n = 10usize;
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let after = stats();
        assert_eq!(counter.load(Ordering::Relaxed), n);
        // Other tests run concurrently, so only a lower bound is exact.
        assert!(
            after.completed >= before.completed + n as u64,
            "every spawned job must be counted completed exactly once \
             (before {}, after {})",
            before.completed,
            after.completed
        );
    }

    #[test]
    fn worker_stats_align_with_pool() {
        let ws = worker_stats();
        let ps = stats();
        assert_eq!(ws.len(), ps.spawned);
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(w.index, i);
        }
        let per_worker: u64 = ws.iter().map(|w| w.stolen).sum();
        assert!(
            per_worker <= ps.stolen,
            "worker steals ({per_worker}) cannot exceed pool steals ({})",
            ps.stolen
        );
    }

    #[test]
    fn configured_parallelism_is_positive_and_bounded() {
        let p = configured_parallelism();
        assert!((1..=MAX_WORKERS).contains(&p));
    }

    #[test]
    fn typed_scope_returns_values_in_spawn_order() {
        let _serial = resize_lock();
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let got = typed_scope(|ts| {
            let handles: Vec<_> = data
                .chunks(16)
                .map(|c| ts.spawn(move || c.iter().sum::<f64>()))
                .collect();
            ts.join();
            handles
                .into_iter()
                .map(TypedHandle::take)
                .collect::<Vec<_>>()
        });
        assert_eq!(got, vec![120.0, 376.0, 632.0, 888.0]);
    }

    #[test]
    fn typed_scope_results_identical_across_pool_sizes_including_zero() {
        let _serial = resize_lock();
        let prev = workers();
        let run = || {
            typed_scope(|ts| {
                let handles: Vec<_> = (0..8)
                    .map(|i| {
                        ts.spawn(move || {
                            (0..100).map(|k| ((i * 100 + k) as f64).sqrt()).sum::<f64>()
                        })
                    })
                    .collect();
                ts.join();
                handles.into_iter().map(TypedHandle::take).sum::<f64>()
            })
        };
        let reference = run();
        for size in [0, 1, 2, MAX_WORKERS] {
            set_workers(size);
            assert_eq!(
                run().to_bits(),
                reference.to_bits(),
                "pool size {size} changed typed reduction"
            );
        }
        set_workers(prev);
    }

    #[test]
    fn typed_take_before_join_panics_cleanly() {
        let _serial = resize_lock();
        typed_scope(|ts| {
            // A single spawned job sits in the stash until join runs it,
            // so its handle is guaranteed not-ready here.
            let h = ts.spawn(|| 1.0f64);
            assert!(!h.is_ready());
            let r = catch_unwind(AssertUnwindSafe(|| h.take()));
            assert!(r.is_err(), "take() before join() must panic");
            ts.join();
        });
    }

    #[test]
    fn typed_job_panic_propagates_from_scope() {
        let _serial = resize_lock();
        let result = catch_unwind(AssertUnwindSafe(|| {
            typed_scope(|ts| {
                let _h = ts.spawn(|| -> f64 { panic!("typed boom") });
                ts.join();
            });
        }));
        assert!(result.is_err(), "a typed job panic must surface");
    }

    #[test]
    fn typed_unconsumed_values_are_dropped() {
        let _serial = resize_lock();
        // Heap-owning values left unclaimed must still be freed by the
        // slot's Drop when the scope closes.
        typed_scope(|ts| {
            for i in 0..6 {
                let _ = ts.spawn(move || vec![i; 100]);
            }
            ts.join();
        });
    }

    #[test]
    fn typed_scope_joins_all_jobs_even_without_explicit_join() {
        let _serial = resize_lock();
        let counter = AtomicUsize::new(0);
        typed_scope(|ts: &TypedScope<'_, '_, ()>| {
            for _ in 0..8 {
                let _ = ts.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No join(): the scope epilogue must still drain everything.
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}
