//! Bucket layer: stage-ordered, cross-session-fair packet scheduling.
//!
//! The packet layer (deques + stealing in [`super`]) decides *where* a
//! job runs; this layer decides *when* a job may be submitted at all. It
//! models the shape of a multi-tenant service: many independent
//! **sessions** (one plan execution each) share the worker pool, every
//! session's work is split into stage-tagged **packets**, and two
//! scheduling rules apply:
//!
//! * **Stage ordering within a session** — a packet at stage *s* is
//!   *open* (eligible for dispatch) only while the session has no
//!   in-flight packet at a different stage. Since stages release in
//!   [`Stage`] order, a session's `Measure` packets all complete before
//!   its first `Infer` packet starts, mirroring the measure-before-infer
//!   dataflow of a plan. This is the "work bucket with an open
//!   condition": completing the last packet of a stage is what opens the
//!   next bucket.
//! * **Round-robin fairness across sessions** — open packets are released
//!   in rotating session order (A₁ B₁ C₁ A₂ B₂ …), and because the
//!   packet layer's thieves take from the FIFO end of the deques, that
//!   interleaving survives into execution order. A session with 100
//!   packets cannot starve a session with 3.
//!
//! Determinism: the bucket layer never changes *what* a packet computes —
//! packets carry closures whose inputs and chunk geometry were fixed by
//! the caller — so, exactly as with the packet layer, results are
//! bit-identical for every release order and every worker count. The
//! suites pin this by running identical session sets through
//! [`SessionSet`] and serially.
//!
//! Panic policy: a packet panic cancels the *rest of its own session*
//! (its queued packets are dropped, counted as cancelled completions so
//! accounting still balances), other sessions keep running, and the first
//! payload resurfaces from [`SessionSet::run`] after every in-flight
//! packet has drained — the same contract as [`super::scope`].

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use super::ScopeState;

/// Plan-execution stages, in the order a session's packets are released.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Data-independent preparation: strategy construction, plan
    /// compilation, workspace setup.
    Transform = 0,
    /// Protected measurement: the noisy-answer queries that spend budget.
    Measure = 1,
    /// Post-processing inference over measured answers (least squares,
    /// multiplicative weights) — must observe completed measurements.
    Infer = 2,
}

/// Number of [`Stage`] values (array-index bound for per-stage counters).
pub const STAGES: usize = 3;

// Process-lifetime per-packet-type counters, read by `pool::stats()`.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static SUBMITTED: [AtomicU64; STAGES] = [ZERO; STAGES];
static COMPLETED: [AtomicU64; STAGES] = [ZERO; STAGES];

pub(crate) fn packets_submitted() -> [u64; STAGES] {
    std::array::from_fn(|i| SUBMITTED[i].load(Ordering::Relaxed))
}

pub(crate) fn packets_completed() -> [u64; STAGES] {
    std::array::from_fn(|i| COMPLETED[i].load(Ordering::Relaxed))
}

/// Handle to one registered session within a [`SessionSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionId(usize);

/// A type-erased packet. Closures are submitted with `'env` lifetimes and
/// erased to `'static`; soundness rests on [`SessionSet::run`] being the
/// only way packets ever execute (see the SAFETY note in `submit`).
type Packet = Box<dyn FnOnce() + Send + 'static>;

struct Session {
    /// Per-stage FIFO of not-yet-released packets.
    queues: [VecDeque<Packet>; STAGES],
    /// Packets released to the pool and not yet completed.
    inflight: usize,
    /// Stage of the in-flight packets (meaningful while `inflight > 0`;
    /// all in-flight packets of one session share a stage by the open
    /// condition).
    inflight_stage: usize,
    /// A packet panicked: the session's remaining packets are cancelled.
    failed: bool,
}

impl Session {
    fn new() -> Self {
        Session {
            queues: std::array::from_fn(|_| VecDeque::new()),
            inflight: 0,
            inflight_stage: 0,
            failed: false,
        }
    }

    /// Lowest stage with queued packets — the session's head bucket.
    fn head_stage(&self) -> Option<usize> {
        self.queues.iter().position(|q| !q.is_empty())
    }
}

struct Sched {
    sessions: Vec<Session>,
    /// Fairness cursor: which session the next release sweep starts at.
    rr: usize,
}

struct Inner {
    /// Completion tracking for released packets, shared with the packet
    /// layer (`run_job` decrements `pending` and wakes the caller).
    join: ScopeState,
    /// The scheduling state. Held only for index updates and queue moves;
    /// packets are always dispatched *after* this lock is released, so a
    /// packet running inline on the dispatching thread (pool size 0,
    /// deques full) re-enters `on_complete` without self-deadlocking.
    sched: Mutex<Sched>,
}

fn lock_sched(inner: &Inner) -> std::sync::MutexGuard<'_, Sched> {
    // Packets never run under this lock, so a packet panic cannot poison
    // a half-updated schedule; recover from stray poisoning regardless.
    inner.sched.lock().unwrap_or_else(|e| e.into_inner())
}

/// A set of concurrent sessions scheduled fairly over the shared pool.
///
/// ```ignore
/// let mut set = bucket::SessionSet::new();
/// let s = set.session();
/// set.submit(s, bucket::Stage::Measure, || measure_chunk(...));
/// set.submit(s, bucket::Stage::Infer, || infer(...));
/// set.run(); // blocks until every packet of every session has run
/// ```
///
/// Packets may borrow anything that outlives the set (`'env` data), like
/// [`super::scope`] jobs. `run` consumes the set, so packets cannot be
/// added to a set that is already executing.
pub struct SessionSet<'env> {
    inner: Arc<Inner>,
    /// Invariant over `'env` and `!Send`/`!Sync`: the set must be driven
    /// from the thread that created it (`run` parks the creator, and the
    /// packet layer unparks exactly that thread when `pending` drains).
    _env: PhantomData<&'env mut &'env ()>,
    _pin: PhantomData<*const ()>,
}

impl<'env> SessionSet<'env> {
    /// Creates an empty session set bound to the calling thread.
    pub fn new() -> Self {
        SessionSet {
            inner: Arc::new(Inner {
                join: ScopeState {
                    pending: AtomicUsize::new(0),
                    caller: std::thread::current(),
                    panic: Mutex::new(None),
                },
                sched: Mutex::new(Sched {
                    sessions: Vec::new(),
                    rr: 0,
                }),
            }),
            _env: PhantomData,
            _pin: PhantomData,
        }
    }

    /// Registers a new session and returns its handle.
    pub fn session(&mut self) -> SessionId {
        let mut s = lock_sched(&self.inner);
        s.sessions.push(Session::new());
        SessionId(s.sessions.len() - 1)
    }

    /// Queues `f` as a packet of `session` at `stage`. Nothing runs until
    /// [`run`](Self::run); release order follows the stage-ordering and
    /// fairness rules in the module docs.
    pub fn submit<F>(&mut self, session: SessionId, stage: Stage, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let pkt: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // The `'env`→`'static` erasure below is sound because packets
        // only ever execute inside `run(self)`, which does not return
        // until every packet has either run to completion or been dropped
        // under the sched lock — so no packet (or its captures) is ever
        // touched after `'env` data could be gone. Leaking the set
        // (`mem::forget`) leaks the packets unrun, which is safe.
        // SAFETY: same-layout trait objects differing only in lifetime;
        // see the soundness argument directly above.
        let pkt: Packet =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Packet>(pkt) };
        SUBMITTED[stage as usize].fetch_add(1, Ordering::Relaxed);
        let mut s = lock_sched(&self.inner);
        s.sessions[session.0].queues[stage as usize].push_back(pkt);
    }

    /// Releases packets under the scheduling rules and blocks until every
    /// session has drained, helping the pool run queued packets while it
    /// waits (help-first joining, like every pool join loop).
    ///
    /// # Panics
    ///
    /// If any packet panicked, the first payload is re-raised here after
    /// all in-flight packets have completed (the panicking session's
    /// still-queued packets are cancelled, other sessions run to the
    /// end) — the [`super::scope`] contract, per session.
    pub fn run(self) {
        let SessionSet { inner, .. } = self;
        let batch = {
            let mut s = lock_sched(&inner);
            collect_ready(&mut s)
        };
        dispatch_batch(&inner, batch);
        while inner.join.pending.load(Ordering::Acquire) != 0 {
            if !super::help_queue_work() {
                std::thread::park();
            }
        }
        // Stall cleanup: an injected fault (`pool::steal` / `pool::job`)
        // can kill a packet *before* its completion hook ran, leaving its
        // session's accounting frozen and its later buckets closed
        // forever. Nothing is running any more (`pending == 0`), so drop
        // whatever is still queued — cancelled work — and let the stored
        // panic report the fault.
        {
            let mut s = lock_sched(&inner);
            for sess in &mut s.sessions {
                for (stage, q) in sess.queues.iter_mut().enumerate() {
                    COMPLETED[stage].fetch_add(q.len() as u64, Ordering::Relaxed);
                    q.clear();
                }
            }
        }
        let payload = inner
            .join
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Default for SessionSet<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// Collects every currently-open packet, in fairness order: rotating
/// sweeps over the sessions starting at the round-robin cursor, one
/// packet per session per sweep, until a sweep releases nothing. Called
/// under the sched lock; the caller dispatches the batch after unlocking.
fn collect_ready(s: &mut Sched) -> Vec<(usize, usize, Packet)> {
    let mut out = Vec::new();
    let n = s.sessions.len();
    if n == 0 {
        return out;
    }
    loop {
        let mut released = false;
        for k in 0..n {
            let i = (s.rr + k) % n;
            let sess = &mut s.sessions[i];
            if sess.failed {
                continue;
            }
            let Some(stage) = sess.head_stage() else {
                continue;
            };
            // Open condition: a later bucket stays closed while an
            // earlier stage is in flight.
            if sess.inflight > 0 && sess.inflight_stage != stage {
                continue;
            }
            // `head_stage` returned `stage` because this queue is
            // nonempty, and the sched lock is held throughout.
            let Some(pkt) = sess.queues[stage].pop_front() else {
                continue;
            };
            sess.inflight += 1;
            sess.inflight_stage = stage;
            out.push((i, stage, pkt));
            released = true;
        }
        s.rr = (s.rr + 1) % n;
        if !released {
            break;
        }
    }
    out
}

/// Hands released packets to the packet layer. Each packet is wrapped so
/// its completion re-enters the scheduler (possibly opening the session's
/// next bucket) before any panic propagates to the join state.
fn dispatch_batch(inner: &Arc<Inner>, batch: Vec<(usize, usize, Packet)>) {
    for (sid, stage, pkt) in batch {
        let handle = Arc::clone(inner);
        let task = move || {
            let result = catch_unwind(AssertUnwindSafe(pkt));
            on_complete(&handle, sid, stage, result.is_err());
            if let Err(payload) = result {
                // Re-raise so the packet layer's catch stores it in the
                // join state (first payload wins) — after the scheduler
                // has already been told this packet is done.
                resume_unwind(payload);
            }
        };
        if std::mem::size_of_val(&task) <= std::mem::size_of::<super::TaskData>()
            && std::mem::align_of_val(&task) <= std::mem::align_of::<usize>()
        {
            // SAFETY: the wrapper is `Send` (Arc + boxed Send closure),
            // and the join state outlives every packet: `run` holds an
            // `Arc<Inner>` until `pending` drains, and `run_job`'s last
            // touch of the scope pointer is the `pending` decrement that
            // lets `run` return.
            let job = unsafe { super::erase(task, &inner.join) };
            super::submit_job(&inner.join, job);
        } else {
            // Oversized wrapper (cannot happen with today's capture set,
            // which is ~5 words): degrade to running it now, inline.
            super::run_oversized(&inner.join, task);
        }
    }
}

/// Completion hook: updates the session's accounting, cancels the rest of
/// a panicked session, and dispatches whatever the completion opened.
fn on_complete(inner: &Arc<Inner>, sid: usize, stage: usize, panicked: bool) {
    COMPLETED[stage].fetch_add(1, Ordering::Relaxed);
    let batch = {
        let mut s = lock_sched(inner);
        let sess = &mut s.sessions[sid];
        sess.inflight -= 1;
        if panicked {
            sess.failed = true;
            // Cancel the session's queued packets; count them completed
            // so submitted/completed totals still balance.
            for (st, q) in sess.queues.iter_mut().enumerate() {
                COMPLETED[st].fetch_add(q.len() as u64, Ordering::Relaxed);
                q.clear();
            }
        }
        collect_ready(&mut s)
    };
    // Outside the lock: an inline-running successor re-enters
    // `on_complete`, which must be able to retake `sched`.
    dispatch_batch(inner, batch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Order log: each packet appends `(session, stage)` encoded small.
    fn record(log: &Mutex<Vec<(usize, usize)>>, sid: usize, stage: usize) {
        log.lock().unwrap().push((sid, stage));
    }

    #[test]
    fn stages_run_in_order_within_a_session() {
        let log = Mutex::new(Vec::new());
        let mut set = SessionSet::new();
        let s = set.session();
        // Submit out of stage order on purpose.
        set.submit(s, Stage::Infer, || record(&log, 0, 2));
        set.submit(s, Stage::Measure, || record(&log, 0, 1));
        set.submit(s, Stage::Measure, || record(&log, 0, 1));
        set.submit(s, Stage::Transform, || record(&log, 0, 0));
        set.run();
        let got: Vec<usize> = log.lock().unwrap().iter().map(|&(_, st)| st).collect();
        assert_eq!(got, vec![0, 1, 1, 2], "stage order must be enforced");
    }

    #[test]
    fn sessions_progress_independently_and_all_packets_run() {
        let ran = AtomicUsize::new(0);
        let mut set = SessionSet::new();
        let ids: Vec<_> = (0..5).map(|_| set.session()).collect();
        for &s in &ids {
            for _ in 0..3 {
                set.submit(s, Stage::Measure, || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            set.submit(s, Stage::Infer, || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        set.run();
        assert_eq!(ran.load(Ordering::Relaxed), 5 * 4);
    }

    #[test]
    fn infer_observes_all_of_its_sessions_measurements() {
        // The load-bearing ordering property: by the time an Infer packet
        // runs, every Measure packet of the same session has completed —
        // under real pool concurrency, swept over sessions.
        let measured: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let seen = Mutex::new(vec![0usize; 4]);
        let mut set = SessionSet::new();
        for (sid, m) in measured.iter().enumerate() {
            let s = set.session();
            for _ in 0..6 {
                set.submit(s, Stage::Measure, move || {
                    m.fetch_add(1, Ordering::SeqCst);
                });
            }
            let seen = &seen;
            set.submit(s, Stage::Infer, move || {
                seen.lock().unwrap()[sid] = m.load(Ordering::SeqCst);
            });
        }
        set.run();
        assert_eq!(*seen.lock().unwrap(), vec![6; 4]);
    }

    #[test]
    fn packets_borrow_env_data() {
        let mut slots = vec![0usize; 8];
        {
            let mut set = SessionSet::new();
            let s = set.session();
            for (i, slot) in slots.iter_mut().enumerate() {
                set.submit(s, Stage::Measure, move || *slot = i + 1);
            }
            set.run();
        }
        assert_eq!(slots, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn panic_cancels_own_session_but_not_siblings() {
        let healthy = AtomicUsize::new(0);
        let poisoned_later = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut set = SessionSet::new();
            let bad = set.session();
            let good = set.session();
            set.submit(bad, Stage::Measure, || panic!("session fault"));
            set.submit(bad, Stage::Infer, || {
                poisoned_later.fetch_add(1, Ordering::Relaxed);
            });
            for _ in 0..4 {
                set.submit(good, Stage::Measure, || {
                    healthy.fetch_add(1, Ordering::Relaxed);
                });
            }
            set.submit(good, Stage::Infer, || {
                healthy.fetch_add(1, Ordering::Relaxed);
            });
            set.run();
        }));
        assert!(result.is_err(), "the packet panic must surface from run()");
        assert_eq!(
            healthy.load(Ordering::Relaxed),
            5,
            "sibling session must run to completion"
        );
        assert_eq!(
            poisoned_later.load(Ordering::Relaxed),
            0,
            "the panicked session's later stages must be cancelled"
        );
    }

    #[test]
    fn packet_counters_balance() {
        let before_s = packets_submitted();
        let before_c = packets_completed();
        let mut set = SessionSet::new();
        let s = set.session();
        set.submit(s, Stage::Transform, || {});
        set.submit(s, Stage::Measure, || {});
        set.submit(s, Stage::Measure, || {});
        set.submit(s, Stage::Infer, || {});
        set.run();
        let ds: Vec<u64> = (0..STAGES)
            .map(|i| packets_submitted()[i] - before_s[i])
            .collect();
        let dc: Vec<u64> = (0..STAGES)
            .map(|i| packets_completed()[i] - before_c[i])
            .collect();
        assert_eq!(ds, vec![1, 2, 1]);
        // Other tests run concurrently, so completed is >= our delta only
        // for our own packets; equality holds because every packet we
        // submitted completed inside our run().
        assert!(dc[0] >= 1 && dc[1] >= 2 && dc[2] >= 1);
    }

    #[test]
    fn empty_set_and_empty_sessions_run_clean() {
        let set = SessionSet::new();
        set.run();
        let mut set = SessionSet::new();
        let _a = set.session();
        let _b = set.session();
        set.run();
    }
}
