//! Compressed-sparse-row matrices.
//!
//! CSR is the explicit representation used when a strategy has structure
//! (hierarchies, partitions, selectors) but no implicit form, and the
//! fallback target of [`crate::Matrix::to_sparse`]. Column indices are
//! stored as `u32`: EKTELO data vectors fit in memory on one machine
//! (paper §2.2), so domains beyond 2³² cells are out of scope.

use crate::DenseMatrix;

/// A CSR (compressed sparse row) matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index of each stored entry.
    indices: Vec<u32>,
    /// Value of each stored entry.
    data: Vec<f64>,
}

impl CsrMatrix {
    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Builds from `(row, col, value)` triplets. Duplicate coordinates are
    /// summed; explicit zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        assert!(
            cols <= u32::MAX as usize,
            "CSR column indices are u32; domain too large"
        );
        let mut per_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            per_row[r].push((c as u32, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut data = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = row.iter().peekable();
            while let Some(&(c, mut v)) = iter.next() {
                while let Some(&&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        v += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                if v != 0.0 {
                    indices.push(c);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Builds from per-row `(col, value)` lists (columns need not be sorted).
    pub fn from_row_entries(cols: usize, rows: Vec<Vec<(usize, f64)>>) -> Self {
        let nrows = rows.len();
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for mut row in rows {
            row.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in row {
                assert!(c < cols, "column {c} out of bounds");
                if v != 0.0 {
                    indices.push(c as u32);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: nrows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// The n×n sparse identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            data: vec![1.0; n],
        }
    }

    /// A square diagonal matrix from its diagonal.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            data: d.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Stored values.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Row pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterates over the stored `(col, value)` entries of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.data[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// `out = self · x`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output dimension mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.data[k] * x[self.indices[k] as usize];
            }
            *o = acc;
        }
    }

    /// `out = selfᵀ · y`.
    pub fn rmatvec_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "rmatvec dimension mismatch");
        assert_eq!(out.len(), self.cols, "rmatvec output dimension mismatch");
        out.fill(0.0);
        for (i, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            for k in lo..hi {
                out[self.indices[k] as usize] += yi * self.data[k];
            }
        }
    }

    /// The transpose in CSR form (a CSC view of `self`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[k] as usize;
                let pos = next[c];
                next[c] += 1;
                indices[pos] = i as u32;
                data[pos] = self.data[k];
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            data,
        }
    }

    /// Sparse–sparse product `self · other` (Gustavson's algorithm).
    pub fn matmul(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut data: Vec<f64> = Vec::new();
        indptr.push(0);
        // Dense accumulator with a touched-list keeps each row O(flops).
        let mut acc = vec![0.0f64; other.cols];
        let mut seen = vec![false; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let a = self.data[k];
                let arow = self.indices[k] as usize;
                for kk in other.indptr[arow]..other.indptr[arow + 1] {
                    let c = other.indices[kk] as usize;
                    if !seen[c] {
                        seen[c] = true;
                        touched.push(c as u32);
                    }
                    acc[c] += a * other.data[kk];
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                let v = acc[c as usize];
                if v != 0.0 {
                    indices.push(c);
                    data.push(v);
                }
                acc[c as usize] = 0.0;
                seen[c as usize] = false;
            }
            touched.clear();
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: other.cols,
            indptr,
            indices,
            data,
        }
    }

    /// Vertical stacking; all blocks must agree on `cols`.
    pub fn vstack(blocks: &[&CsrMatrix]) -> CsrMatrix {
        assert!(!blocks.is_empty(), "vstack of zero blocks");
        let cols = blocks[0].cols;
        let rows = blocks.iter().map(|b| b.rows).sum();
        let nnz = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        indptr.push(0);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack column mismatch");
            // xlint: allow(panic-policy, reason = "indptr is seeded with a 0 push before the loop, so last() is always Some")
            let base = *indptr.last().unwrap();
            for i in 0..b.rows {
                indptr.push(base + b.indptr[i + 1]);
            }
            indices.extend_from_slice(&b.indices);
            data.extend_from_slice(&b.data);
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Kronecker product `self ⊗ other` in CSR form.
    pub fn kron(&self, other: &CsrMatrix) -> CsrMatrix {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        assert!(cols <= u32::MAX as usize, "kron result exceeds u32 columns");
        let nnz = self.nnz() * other.nnz();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        indptr.push(0);
        for i in 0..self.rows {
            for q in 0..other.rows {
                for k in self.indptr[i]..self.indptr[i + 1] {
                    let acol = self.indices[k] as usize;
                    let aval = self.data[k];
                    for kk in other.indptr[q]..other.indptr[q + 1] {
                        indices.push((acol * other.cols + other.indices[kk] as usize) as u32);
                        data.push(aval * other.data[kk]);
                    }
                }
                indptr.push(indices.len());
            }
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Applies `f` to every stored value.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Column sums of `|a|^p` for p = 1 or 2.
    pub fn abs_pow_col_sums(&self, p: u32) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for (k, &c) in self.indices.iter().enumerate() {
            let v = self.data[k];
            sums[c as usize] += match p {
                1 => v.abs(),
                2 => v * v,
                _ => v.abs().powi(p as i32),
            };
        }
        sums
    }

    /// Converts to dense form.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (c, v) in self.row_entries(i) {
                d.set(i, c, v);
            }
        }
        d
    }

    /// Converts a dense matrix into CSR (dropping zeros).
    pub fn from_dense(d: &DenseMatrix) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(d.rows() + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..d.rows() {
            for (j, &v) in d.row_slice(i).iter().enumerate() {
                if v != 0.0 {
                    indices.push(j as u32);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: d.rows(),
            cols: d.cols(),
            indptr,
            indices,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1 0 2], [0 3 0]]
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn triplets_roundtrip_through_dense() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.row_slice(0), &[1.0, 0.0, 2.0]);
        assert_eq!(d.row_slice(1), &[0.0, 3.0, 0.0]);
        assert_eq!(CsrMatrix::from_dense(&d), m);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.to_dense().row_slice(0), &[0.0, 3.5]);
    }

    #[test]
    fn explicit_zero_dropped() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 0, 0.0), (0, 1, 1.0)]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_rmatvec() {
        let m = sample();
        let mut y = vec![0.0; 2];
        m.matvec_into(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![7.0, 6.0]);
        let mut x = vec![0.0; 3];
        m.rmatvec_into(&[1.0, 1.0], &mut x);
        assert_eq!(x, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_matches_dense() {
        let a = sample();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0)]);
        let c = a.matmul(&b);
        let expect = a.to_dense().matmul(&b.to_dense());
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn vstack_matches_dense() {
        let a = sample();
        let b = CsrMatrix::identity(3);
        let s = CsrMatrix::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 5);
        assert_eq!(s.to_dense().row_slice(2), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn kron_matches_definition() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = CsrMatrix::from_triplets(1, 2, &[(0, 0, 3.0), (0, 1, 4.0)]);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 2);
        assert_eq!(k.cols(), 4);
        let d = k.to_dense();
        assert_eq!(d.row_slice(0), &[3.0, 4.0, 0.0, 0.0]);
        assert_eq!(d.row_slice(1), &[0.0, 0.0, 6.0, 8.0]);
    }

    #[test]
    fn col_sums() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (1, 0, 2.0), (1, 1, -3.0)]);
        assert_eq!(m.abs_pow_col_sums(1), vec![3.0, 3.0]);
        assert_eq!(m.abs_pow_col_sums(2), vec![5.0, 9.0]);
    }

    #[test]
    fn diag_and_identity() {
        let d = CsrMatrix::diag(&[2.0, 0.5]);
        let mut y = vec![0.0; 2];
        d.matvec_into(&[1.0, 4.0], &mut y);
        assert_eq!(y, vec![2.0, 2.0]);
        assert_eq!(CsrMatrix::identity(3).nnz(), 3);
    }
}
