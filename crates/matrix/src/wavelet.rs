//! Generalized Haar wavelet evaluation.
//!
//! The Privelet strategy (paper Fig. 2, Plan #2) measures the Haar wavelet
//! coefficients of the data vector: sensitivity grows logarithmically in n
//! while every range query is still reconstructible. We implement the
//! unnormalized wavelet over a binary *split tree*: the first row is the
//! total query, and every internal node of the tree (splitting `[lo, hi)`
//! at `mid = (lo + hi) / 2`) contributes a row with `+1` over the left half
//! and `−1` over the right half. For power-of-two n this is exactly the
//! classical Haar matrix (up to row order); for other n it is the natural
//! generalization and keeps all our operators free of power-of-two
//! restrictions.
//!
//! Rows are emitted in pre-order: `total, node, left-subtree…,
//! right-subtree…`. All functions here agree on that order.

/// `out = W · x` in `O(n)` (each level touches each cell once and there are
/// `O(log n)` levels, but the recursion shares subtree sums so total work is
/// linear).
pub fn wavelet_matvec(x: &[f64], out: &mut [f64]) {
    let n = x.len();
    assert_eq!(out.len(), n, "wavelet matvec output mismatch");
    if n == 0 {
        return;
    }
    let mut next = 1usize;
    let total = rec_matvec(x, 0, n, &mut next, out);
    out[0] = total;
    debug_assert_eq!(next, n);
}

fn rec_matvec(x: &[f64], lo: usize, hi: usize, next: &mut usize, out: &mut [f64]) -> f64 {
    if hi - lo == 1 {
        return x[lo];
    }
    let idx = *next;
    *next += 1;
    let mid = (lo + hi) / 2;
    let left = rec_matvec(x, lo, mid, next, out);
    let right = rec_matvec(x, mid, hi, next, out);
    out[idx] = left - right;
    left + right
}

/// `out = Wᵀ · y` in `O(n)`: each cell accumulates the signed coefficients
/// along its root-to-leaf path.
pub fn wavelet_rmatvec(y: &[f64], out: &mut [f64]) {
    let n = y.len();
    assert_eq!(out.len(), n, "wavelet rmatvec output mismatch");
    if n == 0 {
        return;
    }
    let mut next = 1usize;
    rec_rmatvec(y, 0, n, y[0], &mut next, out);
    debug_assert_eq!(next, n);
}

fn rec_rmatvec(y: &[f64], lo: usize, hi: usize, acc: f64, next: &mut usize, out: &mut [f64]) {
    if hi - lo == 1 {
        out[lo] = acc;
        return;
    }
    let idx = *next;
    *next += 1;
    let mid = (lo + hi) / 2;
    rec_rmatvec(y, lo, mid, acc + y[idx], next, out);
    rec_rmatvec(y, mid, hi, acc - y[idx], next, out);
}

/// Exact L1 column sums of |W|: cell j participates in the total row plus
/// one row per internal node on its path, i.e. `1 + depth(j)`.
pub fn wavelet_abs_col_sums(n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    if n == 0 {
        return out;
    }
    rec_depth(0, n, 1.0, &mut out);
    out
}

fn rec_depth(lo: usize, hi: usize, acc: f64, out: &mut [f64]) {
    if hi - lo == 1 {
        out[lo] = acc;
        return;
    }
    let mid = (lo + hi) / 2;
    rec_depth(lo, mid, acc + 1.0, out);
    rec_depth(mid, hi, acc + 1.0, out);
}

/// Materializes W as `(row, col, value)` triplets (for `to_sparse`).
pub fn wavelet_triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut triplets = Vec::new();
    if n == 0 {
        return triplets;
    }
    for j in 0..n {
        triplets.push((0, j, 1.0));
    }
    let mut next = 1usize;
    rec_triplets(0, n, &mut next, &mut triplets);
    triplets
}

fn rec_triplets(lo: usize, hi: usize, next: &mut usize, out: &mut Vec<(usize, usize, f64)>) {
    if hi - lo == 1 {
        return;
    }
    let idx = *next;
    *next += 1;
    let mid = (lo + hi) / 2;
    for j in lo..mid {
        out.push((idx, j, 1.0));
    }
    for j in mid..hi {
        out.push((idx, j, -1.0));
    }
    rec_triplets(lo, mid, next, out);
    rec_triplets(mid, hi, next, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn haar_4_matches_hand_computed() {
        // Split tree for n=4: total; [0,4) diff; [0,2) diff; [2,4) diff.
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        wavelet_matvec(&x, &mut y);
        assert_eq!(y, vec![10.0, -4.0, -1.0, -1.0]);
    }

    fn assert_close(a: &[f64], b: &[f64], msg: &str) {
        assert_eq!(a.len(), b.len(), "{msg}: length");
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-10, "{msg}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn rmatvec_is_transpose_of_matvec() {
        for n in [1usize, 2, 3, 5, 8, 13, 16] {
            let w = CsrMatrix::from_triplets(n, n, &wavelet_triplets(n));
            let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.7 - 1.0).collect();
            let mut via_impl = vec![0.0; n];
            wavelet_matvec(&x, &mut via_impl);
            let mut via_csr = vec![0.0; n];
            w.matvec_into(&x, &mut via_csr);
            assert_close(&via_impl, &via_csr, &format!("matvec mismatch at n={n}"));

            let mut t_impl = vec![0.0; n];
            wavelet_rmatvec(&x, &mut t_impl);
            let mut t_csr = vec![0.0; n];
            w.rmatvec_into(&x, &mut t_csr);
            assert_close(&t_impl, &t_csr, &format!("rmatvec mismatch at n={n}"));
        }
    }

    #[test]
    fn col_sums_match_materialized() {
        for n in [1usize, 2, 6, 8, 9] {
            let w = CsrMatrix::from_triplets(n, n, &wavelet_triplets(n));
            assert_eq!(
                wavelet_abs_col_sums(n),
                w.abs_pow_col_sums(1),
                "col sums mismatch at n={n}"
            );
        }
    }

    #[test]
    fn sensitivity_is_log_n_plus_one_for_powers_of_two() {
        for k in 1..8 {
            let n = 1usize << k;
            let sums = wavelet_abs_col_sums(n);
            let max = sums.iter().cloned().fold(0.0, f64::max);
            assert_eq!(max, (k + 1) as f64);
        }
    }

    #[test]
    fn wavelet_is_invertible_for_powers_of_two() {
        // Wᵀ(W x) should reconstruct a scaled mix; more usefully, the
        // wavelet transform must be injective: W x = 0 ⟹ x = 0. Verify via
        // round-trip through the dense inverse on a small case.
        let n = 8;
        let w = CsrMatrix::from_triplets(n, n, &wavelet_triplets(n)).to_dense();
        // Rank check via Gram determinant being nonzero is overkill; simply
        // verify that distinct basis vectors produce distinct images.
        let mut images = Vec::new();
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut y = vec![0.0; n];
            w.matvec_into(&e, &mut y);
            images.push(y);
        }
        for a in 0..n {
            for b in (a + 1)..n {
                assert_ne!(images[a], images[b]);
            }
        }
    }
}
