//! Deterministic fault-injection sites ("failpoints").
//!
//! Robustness claims about the budget ledger are only as good as the
//! failure paths that have actually been executed, so the engine declares
//! named failpoints at every place a plan can die mid-flight: reservation
//! admission, each charging class, batch mid-stripe, pool-job dispatch and
//! solver iterations. A test (or an operator running a chaos drill)
//! schedules "fail at the k-th hit of site S" and the site either returns
//! `true` from [`triggered`] (the caller maps that to a typed error) or
//! panics via [`panic_if`] (for sites modelling crashes inside code that
//! has no error channel, e.g. pool jobs).
//!
//! Design constraints, in order:
//!
//! * **Zero cost and zero behavior change when disabled.** The module is
//!   compiled in two legs: the real registry under the non-default
//!   `failpoints` cargo feature, and `#[inline(always)]` no-op stubs
//!   otherwise. Call sites are unconditional — no `cfg` at the site — and
//!   the stubs constant-fold away, so the default build is bit-identical
//!   to a build that never heard of failpoints.
//! * **Deterministic.** Sites are keyed by name; a schedule arms "the
//!   n-th hit" with hits counted from the arming point. No clocks, no
//!   RNG, no probabilities — the same program run hits the same fault.
//!   (Sites inside concurrently-executing pool jobs have a deterministic
//!   *total* hit count, but which particular job observes the n-th hit
//!   depends on worker interleaving; assertions about such faults must be
//!   schedule-independent.)
//! * **Schedules are test/ops-surface only.** The mutation API
//!   (`arm`, `clear` — compiled only with the feature) must never be
//!   called from library code — xlint's
//!   `failpoint-sites` rule enforces that, and also pins [`triggered`] /
//!   [`panic_if`] call sites to the enumerated site files.
//!
//! With the feature on but nothing armed, every site is a counter
//! increment under a mutex — results stay bit-identical to the default
//! build (the fault-injection CI leg runs the determinism suites this
//! way to prove it).

/// The audited failpoint surface: every site name that may appear at a
/// [`triggered`] / [`panic_if`] call site, in one reviewable list.
/// Always compiled (both feature legs) so chaos schedules can be
/// validated against it and xlint's `cfg-parity` rule can cross-check
/// declarations against uses in both directions — a name used but not
/// declared is a covert site; a name declared but never used is a chaos
/// drill that silently arms nothing.
pub const SITES: &[&str] = &[
    "state::reserve",
    "state::charge",
    "state::redeem",
    "kernel::batch_stripe",
    "kernel::batch_exact",
    "pool::job",
    "pool::steal",
    "solver::iteration",
];

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};

    #[derive(Default)]
    struct Site {
        /// Hits observed since the site was last armed (or first seen).
        hits: u64,
        /// Fire on this hit count, then disarm (one-shot).
        armed: Option<u64>,
    }

    /// `BTreeMap` (not a hash map) so any diagnostic iteration over sites
    /// is in a stable order.
    fn registry() -> &'static Mutex<BTreeMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<BTreeMap<String, Site>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = BTreeMap::new();
            if let Ok(spec) = std::env::var("EKTELO_FAILPOINTS") {
                arm_into(&mut map, &spec);
            }
            Mutex::new(map)
        })
    }

    /// Parses a `site=nth;site=nth` schedule into the registry. Malformed
    /// entries are ignored: a chaos drill with a typo'd schedule should
    /// run clean, not crash the process before the first query.
    fn arm_into(map: &mut BTreeMap<String, Site>, spec: &str) {
        for part in spec.split(';') {
            if let Some((site, nth)) = part.split_once('=') {
                if let Ok(n) = nth.trim().parse::<u64>() {
                    if n > 0 {
                        // xlint: allow(warm-path-alloc, reason = "schedule arming is test/ops surface, reachable from warm code only through the one-time registry initialization of the non-default failpoints leg")
                        map.insert(
                            // xlint: allow(warm-path-alloc, reason = "schedule arming is test/ops surface, reachable from warm code only through the one-time registry initialization of the non-default failpoints leg")
                            site.trim().to_string(),
                            Site {
                                hits: 0,
                                armed: Some(n),
                            },
                        );
                    }
                }
            }
        }
    }

    fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Site>> {
        // A panic *at* a site happens outside this lock (the registry
        // guard is already dropped when `panic_if` unwinds), but recover
        // from stray poisoning anyway: the registry holds no invariants
        // a half-completed mutation could break.
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a hit at `site`; returns `true` exactly when a schedule
    /// armed this hit. Firing disarms the site (one-shot), so recovery
    /// code re-entering the same site does not fail forever.
    pub fn triggered(site: &'static str) -> bool {
        let mut reg = lock();
        // xlint: allow(warm-path-alloc, reason = "the non-default failpoints leg trades one BTreeMap entry per site for deterministic fault injection; the default build compiles the no-op stub")
        let entry = reg.entry(site.to_string()).or_default();
        entry.hits += 1;
        if entry.armed == Some(entry.hits) {
            entry.armed = None;
            true
        } else {
            false
        }
    }

    /// Panics when a schedule armed this hit of `site` — for sites that
    /// model crashes in code without an error channel (pool jobs, solver
    /// inner loops). The payload names the site so tests can assert which
    /// fault fired.
    pub fn panic_if(site: &'static str) {
        if triggered(site) {
            // xlint: allow(panic-policy, reason = "the entire purpose of this function is to model a crash at a named site; only reachable with the non-default failpoints feature AND an explicit schedule arming the site")
            panic!("failpoint triggered: {site}");
        }
    }

    /// Arms `site` to fire on its `nth` subsequent hit (1-based), resetting
    /// the site's hit counter. Test/ops surface only — never call from
    /// library code (xlint-enforced).
    pub fn arm(site: &str, nth: u64) {
        assert!(nth > 0, "failpoint hit counts are 1-based");
        lock().insert(
            site.to_string(),
            Site {
                hits: 0,
                armed: Some(nth),
            },
        );
    }

    /// Arms every entry of a `site=nth;site=nth` schedule string (the same
    /// grammar as the `EKTELO_FAILPOINTS` env schedule, which is parsed at
    /// first registry use). Test/ops surface only.
    pub fn arm_schedule(spec: &str) {
        arm_into(&mut lock(), spec);
    }

    /// Disarms every site and resets all hit counters.
    pub fn clear() {
        lock().clear();
    }

    /// Hits observed at `site` since it was last armed/cleared/first seen.
    /// Sweep tests run a plan once clean to learn each site's hit count,
    /// then re-run arming hits `1..=hits(site)`.
    pub fn hits(site: &str) -> u64 {
        lock().get(site).map_or(0, |s| s.hits)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::{Mutex, MutexGuard, OnceLock};

        /// The registry is process-global, so tests touching it must not
        /// interleave.
        fn serial() -> MutexGuard<'static, ()> {
            static GATE: OnceLock<Mutex<()>> = OnceLock::new();
            GATE.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn fires_exactly_on_the_armed_hit_then_disarms() {
            let _g = serial();
            clear();
            arm("t::site", 3);
            assert!(!triggered("t::site"));
            assert!(!triggered("t::site"));
            assert!(triggered("t::site"));
            // One-shot: the 3rd hit of the *next* epoch does not fire.
            assert!(!triggered("t::site"));
            assert_eq!(hits("t::site"), 4);
            clear();
        }

        #[test]
        fn unarmed_sites_only_count() {
            let _g = serial();
            clear();
            for _ in 0..5 {
                assert!(!triggered("t::unarmed"));
            }
            assert_eq!(hits("t::unarmed"), 5);
            clear();
        }

        #[test]
        fn arming_resets_the_hit_counter() {
            let _g = serial();
            clear();
            for _ in 0..7 {
                triggered("t::reset");
            }
            arm("t::reset", 1);
            assert_eq!(hits("t::reset"), 0);
            assert!(triggered("t::reset"));
            clear();
        }

        #[test]
        fn schedule_grammar_parses_and_ignores_malformed_entries() {
            let _g = serial();
            clear();
            arm_schedule("t::a=2; t::b = 1 ;bogus;t::c=;t::d=0;=3");
            assert!(!triggered("t::a"));
            assert!(triggered("t::a"));
            assert!(triggered("t::b"));
            // Malformed/zero entries armed nothing.
            assert!(!triggered("t::c"));
            assert!(!triggered("t::d"));
            clear();
        }

        #[test]
        fn panic_if_carries_the_site_name() {
            let _g = serial();
            clear();
            arm("t::boom", 1);
            let err = std::panic::catch_unwind(|| panic_if("t::boom")).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("t::boom"), "payload was {msg:?}");
            clear();
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    /// No-op stub: the default build records nothing and never fires.
    #[inline(always)]
    pub fn triggered(_site: &'static str) -> bool {
        false
    }

    /// No-op stub: the default build never panics here.
    #[inline(always)]
    pub fn panic_if(_site: &'static str) {}
}

pub use imp::*;
