//! Shared compute kernels for the hot inner loops.
//!
//! Every scalar loop the engine runs in steady state — the solver
//! primitives (`dot`/`axpy`/`scale`/`norm2`), the leaf accumulations of
//! [`crate::Matrix`] evaluation (prefix/suffix sums, diagonal products,
//! union scatter-adds) and the dense row blocks — lives here, exactly
//! once. Two implementations exist side by side:
//!
//! * [`scalar`] — plain sequential reference loops, always compiled;
//! * [`simd`] — portable 4-lane blocked versions (`[f64; 4]` blocks the
//!   optimizer lowers to vector instructions; no intrinsics, no runtime
//!   detection), always compiled so tests and benches can compare the two
//!   in one build.
//!
//! The module's top-level re-exports select one of them at **compile
//! time**: the `simd` feature picks [`simd`], otherwise the scalar
//! fallback is used. The default build therefore runs the reference
//! loops, and CI keeps both legs green.
//!
//! # Bit-identity vs documented tolerance
//!
//! Kernels fall into two classes, and the distinction is load-bearing for
//! the engine's determinism gates:
//!
//! * **Order-preserving** kernels ([`axpy`], [`xpay`], [`scale`],
//!   [`scale_into`], [`add_assign`], [`mul_into`], [`mul_add_assign`],
//!   [`rsub`], the panel gather/scatters and the prefix/suffix sums)
//!   perform the identical per-element arithmetic in the identical order
//!   as the scalar reference — blocking only changes how the loop is
//!   *written*, never which operation produces which element. Their
//!   results are **bit-identical** to scalar (no fused multiply-add: FMA's
//!   single rounding would differ from scalar mul-then-add), so they join
//!   the existing bit-identity determinism suites unchanged.
//! * **Reassociating** reductions ([`dot`], [`sum`], [`sumsq`], and
//!   [`norm2`] built on them) sum in a *pinned* fixed tree under `simd`:
//!   two independent 4-lane accumulators over 8-element blocks, reduced
//!   lane-wise (`acc0 + acc1`), then as `(v0 + v1) + (v2 + v3)`, then a
//!   sequential scalar tail. That order differs from the scalar
//!   left-to-right sum, so the two legs agree only to rounding (relative
//!   error `O(n·ε)`, tolerance-tested in `proptest_kernels.rs`) — but the
//!   tree is a compile-time constant, so each leg is fully deterministic.
//!   [`par_dot`] extends the same policy across threads: chunk geometry
//!   comes from [`crate::pool::configured_parallelism`] (a process
//!   constant) and partials merge in fixed chunk order, so its result is
//!   bit-identical for every pool size, including 0.

use crate::pool;

/// f64 lanes per SIMD block (the portable vector width every blocked
/// kernel is written for).
pub const LANES: usize = 4;

/// Columns gathered per pass by the Kronecker stage-2 panel kernels.
pub const KRON_PANEL: usize = 4;

/// Reductions run two independent [`LANES`]-wide accumulators.
const UNROLL: usize = 2 * LANES;

/// Sequential reference implementations — the scalar fallback leg, and
/// the yardstick every blocked kernel is tested against.
pub mod scalar {
    /// Inner product `⟨a, b⟩`, summed left to right.
    ///
    /// CLASS: reassociating
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    /// Sum of all entries, left to right.
    ///
    /// CLASS: reassociating
    #[inline]
    pub fn sum(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    /// Sum of squares, left to right.
    ///
    /// CLASS: reassociating
    #[inline]
    pub fn sumsq(v: &[f64]) -> f64 {
        v.iter().map(|&x| x * x).sum()
    }

    /// `y ← y + a·x`, element-wise in order.
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        debug_assert_eq!(y.len(), x.len());
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// `y ← x + b·y`, element-wise in order.
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn xpay(y: &mut [f64], b: f64, x: &[f64]) {
        debug_assert_eq!(y.len(), x.len());
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi + b * *yi;
        }
    }

    /// `v ← c·v`, element-wise in order.
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn scale(v: &mut [f64], c: f64) {
        for x in v {
            *x *= c;
        }
    }

    /// `out ← c·x`, element-wise in order.
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn scale_into(out: &mut [f64], c: f64, x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = c * xi;
        }
    }

    /// `out ← out + x` — the scatter-add merge.
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn add_assign(out: &mut [f64], x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        for (o, &xi) in out.iter_mut().zip(x) {
            *o += xi;
        }
    }

    /// `out ← d ⊙ x` (diagonal product).
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn mul_into(out: &mut [f64], d: &[f64], x: &[f64]) {
        debug_assert_eq!(out.len(), d.len());
        debug_assert_eq!(out.len(), x.len());
        for ((o, &di), &xi) in out.iter_mut().zip(d).zip(x) {
            *o = di * xi;
        }
    }

    /// `out ← out + d ⊙ x` (accumulating diagonal product).
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn mul_add_assign(out: &mut [f64], d: &[f64], x: &[f64]) {
        debug_assert_eq!(out.len(), d.len());
        debug_assert_eq!(out.len(), x.len());
        for ((o, &di), &xi) in out.iter_mut().zip(d).zip(x) {
            *o += di * xi;
        }
    }

    /// `e ← y − e` (residual reversal, the multiplicative-weights update).
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn rsub(e: &mut [f64], y: &[f64]) {
        debug_assert_eq!(e.len(), y.len());
        for (ei, &yi) in e.iter_mut().zip(y) {
            *ei = yi - *ei;
        }
    }
}

/// Portable 4-lane blocked implementations, selected by the `simd`
/// feature. Order-preserving kernels are bit-identical to [`scalar`];
/// reductions use the pinned fixed tree documented at module level.
pub mod simd {
    use super::{LANES, UNROLL};

    /// Folds the pinned reduction state (two 4-lane accumulators) and the
    /// sequential tail into the final scalar: lane-wise `acc0 + acc1`,
    /// then `(v0 + v1) + (v2 + v3)`, then the remainder left to right.
    #[inline]
    fn reduce(acc0: [f64; LANES], acc1: [f64; LANES], tail: impl Iterator<Item = f64>) -> f64 {
        let v = [
            acc0[0] + acc1[0],
            acc0[1] + acc1[1],
            acc0[2] + acc1[2],
            acc0[3] + acc1[3],
        ];
        let mut s = (v[0] + v[1]) + (v[2] + v[3]);
        for t in tail {
            s += t;
        }
        s
    }

    /// Inner product `⟨a, b⟩` over the pinned fixed reduction tree.
    ///
    /// CLASS: reassociating
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut ca = a.chunks_exact(UNROLL);
        let mut cb = b.chunks_exact(UNROLL);
        let mut acc0 = [0.0; LANES];
        let mut acc1 = [0.0; LANES];
        for (pa, pb) in (&mut ca).zip(&mut cb) {
            for l in 0..LANES {
                acc0[l] += pa[l] * pb[l];
                acc1[l] += pa[LANES + l] * pb[LANES + l];
            }
        }
        let tail = ca.remainder().iter().zip(cb.remainder());
        reduce(acc0, acc1, tail.map(|(&x, &y)| x * y))
    }

    /// Sum of all entries over the pinned fixed reduction tree.
    ///
    /// CLASS: reassociating
    #[inline]
    pub fn sum(v: &[f64]) -> f64 {
        let mut cv = v.chunks_exact(UNROLL);
        let mut acc0 = [0.0; LANES];
        let mut acc1 = [0.0; LANES];
        for p in &mut cv {
            for l in 0..LANES {
                acc0[l] += p[l];
                acc1[l] += p[LANES + l];
            }
        }
        reduce(acc0, acc1, cv.remainder().iter().copied())
    }

    /// Sum of squares over the pinned fixed reduction tree.
    ///
    /// CLASS: reassociating
    #[inline]
    pub fn sumsq(v: &[f64]) -> f64 {
        let mut cv = v.chunks_exact(UNROLL);
        let mut acc0 = [0.0; LANES];
        let mut acc1 = [0.0; LANES];
        for p in &mut cv {
            for l in 0..LANES {
                acc0[l] += p[l] * p[l];
                acc1[l] += p[LANES + l] * p[LANES + l];
            }
        }
        reduce(acc0, acc1, cv.remainder().iter().map(|&x| x * x))
    }

    /// `y ← y + a·x`; bit-identical to [`super::scalar::axpy`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        debug_assert_eq!(y.len(), x.len());
        let mut cy = y.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        for (py, px) in (&mut cy).zip(&mut cx) {
            for l in 0..LANES {
                py[l] += a * px[l];
            }
        }
        for (yi, &xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
            *yi += a * xi;
        }
    }

    /// `y ← x + b·y`; bit-identical to [`super::scalar::xpay`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn xpay(y: &mut [f64], b: f64, x: &[f64]) {
        debug_assert_eq!(y.len(), x.len());
        let mut cy = y.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        for (py, px) in (&mut cy).zip(&mut cx) {
            for l in 0..LANES {
                py[l] = px[l] + b * py[l];
            }
        }
        for (yi, &xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
            *yi = xi + b * *yi;
        }
    }

    /// `v ← c·v`; bit-identical to [`super::scalar::scale`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn scale(v: &mut [f64], c: f64) {
        let mut cv = v.chunks_exact_mut(LANES);
        for p in &mut cv {
            for x in p.iter_mut() {
                *x *= c;
            }
        }
        for x in cv.into_remainder() {
            *x *= c;
        }
    }

    /// `out ← c·x`; bit-identical to [`super::scalar::scale_into`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn scale_into(out: &mut [f64], c: f64, x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        let mut co = out.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        for (po, px) in (&mut co).zip(&mut cx) {
            for l in 0..LANES {
                po[l] = c * px[l];
            }
        }
        for (o, &xi) in co.into_remainder().iter_mut().zip(cx.remainder()) {
            *o = c * xi;
        }
    }

    /// `out ← out + x`; bit-identical to [`super::scalar::add_assign`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn add_assign(out: &mut [f64], x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        let mut co = out.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        for (po, px) in (&mut co).zip(&mut cx) {
            for l in 0..LANES {
                po[l] += px[l];
            }
        }
        for (o, &xi) in co.into_remainder().iter_mut().zip(cx.remainder()) {
            *o += xi;
        }
    }

    /// `out ← d ⊙ x`; bit-identical to [`super::scalar::mul_into`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn mul_into(out: &mut [f64], d: &[f64], x: &[f64]) {
        debug_assert_eq!(out.len(), d.len());
        debug_assert_eq!(out.len(), x.len());
        let mut co = out.chunks_exact_mut(LANES);
        let mut cd = d.chunks_exact(LANES);
        let mut cx = x.chunks_exact(LANES);
        for ((po, pd), px) in (&mut co).zip(&mut cd).zip(&mut cx) {
            for l in 0..LANES {
                po[l] = pd[l] * px[l];
            }
        }
        let tail = cd.remainder().iter().zip(cx.remainder());
        for (o, (&di, &xi)) in co.into_remainder().iter_mut().zip(tail) {
            *o = di * xi;
        }
    }

    /// `out ← out + d ⊙ x`; bit-identical to
    /// [`super::scalar::mul_add_assign`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn mul_add_assign(out: &mut [f64], d: &[f64], x: &[f64]) {
        debug_assert_eq!(out.len(), d.len());
        debug_assert_eq!(out.len(), x.len());
        let mut co = out.chunks_exact_mut(LANES);
        let mut cd = d.chunks_exact(LANES);
        let mut cx = x.chunks_exact(LANES);
        for ((po, pd), px) in (&mut co).zip(&mut cd).zip(&mut cx) {
            for l in 0..LANES {
                po[l] += pd[l] * px[l];
            }
        }
        let tail = cd.remainder().iter().zip(cx.remainder());
        for (o, (&di, &xi)) in co.into_remainder().iter_mut().zip(tail) {
            *o += di * xi;
        }
    }

    /// `e ← y − e`; bit-identical to [`super::scalar::rsub`].
    ///
    /// CLASS: order-preserving
    #[inline]
    pub fn rsub(e: &mut [f64], y: &[f64]) {
        debug_assert_eq!(e.len(), y.len());
        let mut ce = e.chunks_exact_mut(LANES);
        let mut cy = y.chunks_exact(LANES);
        for (pe, py) in (&mut ce).zip(&mut cy) {
            for l in 0..LANES {
                pe[l] = py[l] - pe[l];
            }
        }
        for (ei, &yi) in ce.into_remainder().iter_mut().zip(cy.remainder()) {
            *ei = yi - *ei;
        }
    }
}

#[cfg(not(feature = "simd"))]
pub use scalar::{
    add_assign, axpy, dot, mul_add_assign, mul_into, rsub, scale, scale_into, sum, sumsq, xpay,
};
#[cfg(feature = "simd")]
pub use simd::{
    add_assign, axpy, dot, mul_add_assign, mul_into, rsub, scale, scale_into, sum, sumsq, xpay,
};

/// Euclidean norm `‖v‖₂` (built on the selected [`sumsq`], so it inherits
/// the reassociating-reduction tolerance policy under `simd`).
///
/// CLASS: reassociating
#[inline]
pub fn norm2(v: &[f64]) -> f64 {
    sumsq(v).sqrt()
}

/// Running prefix sum: `out[i] = x[0] + … + x[i]`.
///
/// Deliberately **not** blocked: a vectorized prefix scan reassociates the
/// chain, and the prefix/suffix leaves are order-preserving kernels under
/// the engine's determinism policy. Both feature legs share this single
/// sequential implementation.
///
/// CLASS: order-preserving
#[inline]
pub fn prefix_sum_into(out: &mut [f64], x: &[f64]) {
    debug_assert_eq!(out.len(), x.len());
    let mut acc = 0.0;
    for (o, &xi) in out.iter_mut().zip(x) {
        acc += xi;
        *o = acc;
    }
}

/// Running suffix sum: `out[i] = x[i] + … + x[n−1]` (the transpose of
/// [`prefix_sum_into`]); sequential for the same reason.
///
/// CLASS: order-preserving
#[inline]
pub fn suffix_sum_into(out: &mut [f64], x: &[f64]) {
    debug_assert_eq!(out.len(), x.len());
    let mut acc = 0.0;
    for (o, &xi) in out.iter_mut().rev().zip(x.iter().rev()) {
        acc += xi;
        *o = acc;
    }
}

/// Gathers the [`KRON_PANEL`] consecutive columns `q .. q+KRON_PANEL` of
/// the row-major `rows × stride` matrix `t` into `panel`, column-major
/// (column `j` of the panel occupies `panel[j·rows ..][.. rows]`).
///
/// One pass over `t` reads four adjacent entries per row instead of one,
/// amortizing the strided cache-line traffic of the Kronecker stage-2
/// gather fourfold. Pure data movement: bit-identical to four
/// single-column gathers.
///
/// CLASS: order-preserving
pub fn gather_panel(t: &[f64], stride: usize, q: usize, rows: usize, panel: &mut [f64]) {
    assert!(q + KRON_PANEL <= stride, "panel gather out of bounds");
    assert_eq!(panel.len(), KRON_PANEL * rows, "panel buffer mis-sized");
    let (p0, r) = panel.split_at_mut(rows);
    let (p1, r) = r.split_at_mut(rows);
    let (p2, p3) = r.split_at_mut(rows);
    for (i, (((o0, o1), o2), o3)) in p0.iter_mut().zip(p1).zip(p2).zip(p3).enumerate() {
        let row = &t[i * stride + q..i * stride + q + KRON_PANEL];
        *o0 = row[0];
        *o1 = row[1];
        *o2 = row[2];
        *o3 = row[3];
    }
}

/// Scatters a column-major [`KRON_PANEL`]-wide `panel` (layout as in
/// [`gather_panel`]) into columns `q .. q+KRON_PANEL` of the row-major
/// `rows × stride` matrix `out`. Pure data movement: bit-identical to four
/// single-column scatters.
///
/// CLASS: order-preserving
pub fn scatter_panel(panel: &[f64], rows: usize, out: &mut [f64], stride: usize, q: usize) {
    assert!(q + KRON_PANEL <= stride, "panel scatter out of bounds");
    assert_eq!(panel.len(), KRON_PANEL * rows, "panel buffer mis-sized");
    let (p0, r) = panel.split_at(rows);
    let (p1, r) = r.split_at(rows);
    let (p2, p3) = r.split_at(rows);
    for (i, (((&v0, &v1), &v2), &v3)) in p0.iter().zip(p1).zip(p2).zip(p3).enumerate() {
        let row = &mut out[i * stride + q..i * stride + q + KRON_PANEL];
        row[0] = v0;
        row[1] = v1;
        row[2] = v2;
        row[3] = v3;
    }
}

/// Minimum vector length before [`par_dot`] splits across the pool;
/// below it the dispatch overhead exceeds the arithmetic.
const PAR_DOT_MIN: usize = 1 << 15;

/// Inner product with pool-threaded chunk reduction.
///
/// The vector is split into [`pool::configured_parallelism`] fixed chunks
/// (a process constant — **not** the live worker count), each chunk's
/// partial is computed with the selected [`dot`] kernel through the typed
/// [`pool::typed_scope`] executor, and the partials are summed on the
/// caller in fixed chunk order. Changing [`pool::set_workers`] therefore
/// never changes the result: it is bit-identical for every pool size,
/// including 0 (everything inline), and for every steal interleaving —
/// when all workers are busy, spawns queue on per-worker deques and may
/// execute via work stealing, which moves chunks but never reorders the
/// caller-side sum. Short vectors skip the pool entirely and return
/// `dot(a, b)`. Allocation-free: partials live in a stack array and the
/// typed scope's result slots are preallocated.
///
/// WARM: allocation-free by contract — partials live in a stack array and
/// the typed scope preallocates its result slots (xlint `warm-path-alloc`).
///
/// CLASS: reassociating
pub fn par_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "par_dot length mismatch");
    let n = a.len();
    let k = pool::configured_parallelism();
    if n < PAR_DOT_MIN || k < 2 {
        return dot(a, b);
    }
    let chunk = n.div_ceil(k);
    let nchunks = n.div_ceil(chunk);
    let mut partials = [0.0f64; pool::MAX_WORKERS];
    pool::typed_scope(|ts| {
        let mut handles: [Option<pool::TypedHandle<'_, f64>>; pool::MAX_WORKERS] =
            [const { None }; pool::MAX_WORKERS];
        for (c, h) in handles.iter_mut().take(nchunks).enumerate() {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            let (ac, bc) = (&a[lo..hi], &b[lo..hi]);
            *h = Some(ts.spawn(move || dot(ac, bc)));
        }
        ts.join();
        for (p, h) in partials.iter_mut().zip(handles.iter_mut()) {
            if let Some(h) = h.take() {
                *p = h.take();
            }
        }
    });
    // Fixed-order sequential merge of the fixed-geometry partials.
    let mut s = 0.0;
    for &p in &partials[..nchunks] {
        s += p;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 37) % 19) as f64 * 0.31 - 2.7)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 53) % 23) as f64 * 0.17 - 1.9)
            .collect();
        (a, b)
    }

    #[test]
    fn order_preserving_kernels_bit_match_scalar_at_odd_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1023] {
            let (x, d) = data(n);
            let mut ys = x.clone();
            let mut yv = x.clone();
            scalar::axpy(&mut ys, 1.3, &d);
            simd::axpy(&mut yv, 1.3, &d);
            assert_eq!(ys, yv, "axpy n={n}");
            scalar::xpay(&mut ys, -0.7, &d);
            simd::xpay(&mut yv, -0.7, &d);
            assert_eq!(ys, yv, "xpay n={n}");
            scalar::scale(&mut ys, 1.0 / 3.0);
            simd::scale(&mut yv, 1.0 / 3.0);
            assert_eq!(ys, yv, "scale n={n}");
            scalar::add_assign(&mut ys, &x);
            simd::add_assign(&mut yv, &x);
            assert_eq!(ys, yv, "add_assign n={n}");
            scalar::mul_into(&mut ys, &d, &x);
            simd::mul_into(&mut yv, &d, &x);
            assert_eq!(ys, yv, "mul_into n={n}");
            scalar::mul_add_assign(&mut ys, &d, &x);
            simd::mul_add_assign(&mut yv, &d, &x);
            assert_eq!(ys, yv, "mul_add_assign n={n}");
            scalar::rsub(&mut ys, &d);
            simd::rsub(&mut yv, &d);
            assert_eq!(ys, yv, "rsub n={n}");
            scalar::scale_into(&mut ys, 0.9, &x);
            simd::scale_into(&mut yv, 0.9, &x);
            assert_eq!(ys, yv, "scale_into n={n}");
        }
    }

    #[test]
    fn reductions_agree_within_tolerance_and_are_deterministic() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let (a, b) = data(n);
            let (ds, dv) = (scalar::dot(&a, &b), simd::dot(&a, &b));
            let bound = 1e-12 * (1.0 + ds.abs()) * (n as f64 + 1.0);
            assert!((ds - dv).abs() <= bound, "dot n={n}: {ds} vs {dv}");
            assert_eq!(dv.to_bits(), simd::dot(&a, &b).to_bits());
            let (ss, sv) = (scalar::sum(&a), simd::sum(&a));
            assert!((ss - sv).abs() <= bound, "sum n={n}: {ss} vs {sv}");
            let (qs, qv) = (scalar::sumsq(&a), simd::sumsq(&a));
            assert!((qs - qv).abs() <= bound, "sumsq n={n}: {qs} vs {qv}");
        }
    }

    #[test]
    fn prefix_and_suffix_sums_match_reference() {
        let (x, _) = data(13);
        let mut p = vec![0.0; 13];
        prefix_sum_into(&mut p, &x);
        let mut acc = 0.0;
        for (pi, &xi) in p.iter().zip(&x) {
            acc += xi;
            assert_eq!(*pi, acc);
        }
        let mut s = vec![0.0; 13];
        suffix_sum_into(&mut s, &x);
        let mut acc = 0.0;
        for (si, &xi) in s.iter().zip(&x).rev() {
            acc += xi;
            assert_eq!(*si, acc);
        }
    }

    #[test]
    fn panel_gather_scatter_round_trips() {
        let (rows, stride) = (5usize, 9usize);
        let t: Vec<f64> = (0..rows * stride).map(|i| i as f64).collect();
        let mut panel = vec![0.0; KRON_PANEL * rows];
        gather_panel(&t, stride, 2, rows, &mut panel);
        for j in 0..KRON_PANEL {
            for i in 0..rows {
                assert_eq!(panel[j * rows + i], t[i * stride + 2 + j]);
            }
        }
        let mut out = vec![0.0; rows * stride];
        scatter_panel(&panel, rows, &mut out, stride, 2);
        for i in 0..rows {
            for j in 0..KRON_PANEL {
                assert_eq!(out[i * stride + 2 + j], t[i * stride + 2 + j]);
            }
        }
    }

    #[test]
    fn par_dot_matches_fixed_chunk_reference() {
        let n = PAR_DOT_MIN + 37;
        let (a, b) = data(n);
        let k = pool::configured_parallelism();
        let got = par_dot(&a, &b);
        if k < 2 {
            assert_eq!(got.to_bits(), dot(&a, &b).to_bits());
            return;
        }
        let chunk = n.div_ceil(k);
        let mut expect = 0.0;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            expect += dot(&a[lo..hi], &b[lo..hi]);
            lo = hi;
        }
        assert_eq!(got.to_bits(), expect.to_bits());
    }
}
