//! Lossless materialization to explicit (sparse/dense) representations.
//!
//! The paper stresses that implicit matrices are *lossless*: "an implicit
//! matrix can always be materialized in sparse or dense form, although the
//! goal is to perform computations without materialization" (§7.2). The
//! Fig. 4/5 experiments ablate exactly this choice, which
//! [`Matrix::with_repr`] makes a one-liner.

use crate::wavelet::wavelet_triplets;
use crate::{CsrMatrix, DenseMatrix, Matrix};

/// A physical representation choice for a logical matrix (paper §7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repr {
    /// Keep the implicit structure as-is.
    Implicit,
    /// Materialize to CSR.
    Sparse,
    /// Materialize to row-major dense.
    Dense,
}

impl Matrix {
    /// Materializes to CSR form. Exact — no approximation is involved.
    pub fn to_sparse(&self) -> CsrMatrix {
        match self {
            Matrix::Dense(d) => CsrMatrix::from_dense(d),
            Matrix::Sparse(s) => (**s).clone(),
            Matrix::Diagonal(d) => CsrMatrix::diag(d),
            Matrix::Identity { n } => CsrMatrix::identity(*n),
            Matrix::Ones { rows, cols } => {
                let mut triplets = Vec::with_capacity(rows * cols);
                for i in 0..*rows {
                    for j in 0..*cols {
                        triplets.push((i, j, 1.0));
                    }
                }
                CsrMatrix::from_triplets(*rows, *cols, &triplets)
            }
            Matrix::Prefix { n } => {
                let mut triplets = Vec::with_capacity(n * (n + 1) / 2);
                for i in 0..*n {
                    for j in 0..=i {
                        triplets.push((i, j, 1.0));
                    }
                }
                CsrMatrix::from_triplets(*n, *n, &triplets)
            }
            Matrix::Suffix { n } => {
                let mut triplets = Vec::with_capacity(n * (n + 1) / 2);
                for i in 0..*n {
                    for j in i..*n {
                        triplets.push((i, j, 1.0));
                    }
                }
                CsrMatrix::from_triplets(*n, *n, &triplets)
            }
            Matrix::Wavelet { n } => CsrMatrix::from_triplets(*n, *n, &wavelet_triplets(*n)),
            Matrix::Range(r) => {
                let mut triplets = Vec::new();
                for (k, (lo, hi)) in r.ranges().enumerate() {
                    for j in lo..hi {
                        triplets.push((k, j, 1.0));
                    }
                }
                CsrMatrix::from_triplets(r.num_queries(), r.domain(), &triplets)
            }
            Matrix::Rect2D(r) => {
                CsrMatrix::from_triplets(r.num_queries(), r.domain(), &r.triplets())
            }
            Matrix::Union(blocks) => {
                let mats: Vec<CsrMatrix> = blocks.iter().map(Matrix::to_sparse).collect();
                let refs: Vec<&CsrMatrix> = mats.iter().collect();
                CsrMatrix::vstack(&refs)
            }
            Matrix::Product(a, b) => a.to_sparse().matmul(&b.to_sparse()),
            Matrix::Kronecker(a, b) => a.to_sparse().kron(&b.to_sparse()),
            Matrix::Scaled(c, a) => a.to_sparse().map(|v| c * v),
            Matrix::Transpose(a) => a.to_sparse().transpose(),
        }
    }

    /// Materializes to dense form. Exact.
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(d) => (**d).clone(),
            _ => self.to_sparse().to_dense(),
        }
    }

    /// Converts this logical matrix into the requested physical
    /// representation (losslessly). `Implicit` is the identity conversion.
    pub fn with_repr(&self, repr: Repr) -> Matrix {
        match repr {
            Repr::Implicit => self.clone(),
            Repr::Sparse => Matrix::sparse(self.to_sparse()),
            Repr::Dense => Matrix::dense(self.to_dense()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &Matrix) {
        let s = m.to_sparse();
        let d = m.to_dense();
        assert_eq!(s.to_dense(), d, "sparse/dense disagree for {m:?}");
        // Products agree across representations.
        let n = m.cols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let implicit = m.matvec(&x);
        let mut via_sparse = vec![0.0; m.rows()];
        s.matvec_into(&x, &mut via_sparse);
        for (a, b) in implicit.iter().zip(&via_sparse) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&Matrix::identity(5));
        roundtrip(&Matrix::ones(2, 5));
        roundtrip(&Matrix::prefix(5));
        roundtrip(&Matrix::suffix(5));
        roundtrip(&Matrix::wavelet(8));
        roundtrip(&Matrix::wavelet(7));
        roundtrip(&Matrix::range_queries(6, vec![(0, 2), (1, 6)]));
        roundtrip(&Matrix::diagonal(vec![2.0, -1.0, 0.5]));
        roundtrip(&Matrix::vstack(vec![
            Matrix::identity(4),
            Matrix::wavelet(4),
        ]));
        roundtrip(&Matrix::product(Matrix::total(4), Matrix::prefix(4)));
        roundtrip(&Matrix::kron(Matrix::prefix(3), Matrix::identity(2)));
        roundtrip(&Matrix::scaled(0.25, Matrix::suffix(4)));
        roundtrip(&Matrix::wavelet(4).transpose());
    }

    #[test]
    fn with_repr_preserves_values() {
        let m = Matrix::vstack(vec![Matrix::prefix(6), Matrix::total(6)]);
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let expect = m.matvec(&x);
        for repr in [Repr::Implicit, Repr::Sparse, Repr::Dense] {
            let forced = m.with_repr(repr);
            assert_eq!(forced.matvec(&x), expect, "mismatch under {repr:?}");
        }
    }

    #[test]
    fn repr_changes_storage_not_semantics() {
        let m = Matrix::prefix(64);
        assert_eq!(m.stored_scalars(), 0);
        assert_eq!(m.with_repr(Repr::Sparse).stored_scalars(), 64 * 65 / 2);
        assert_eq!(m.with_repr(Repr::Dense).stored_scalars(), 64 * 64);
    }
}
