//! Process-wide memo for [`Matrix::l1_sensitivity`] keyed by **object
//! identity**, not by shape.
//!
//! EKTELO plans interrogate the same strategy matrix many times — once per
//! measurement call, once per stripe, once per budget check — and the
//! column-norm pass behind `l1_sensitivity` is `O(nnz)` plus one
//! domain-sized allocation each time. The Arc-backed representations
//! (`Dense`, `Sparse`, `Diagonal`, `Range`, `Rect2D`) are immutable once
//! built, so their norm can be computed once per *object* and served from a
//! fixed table thereafter.
//!
//! Keying discipline (deliberately NOT a content fingerprint):
//!
//! * The key is the Arc payload address plus the enum variant. Two
//!   equal-valued matrices at different addresses never alias — a stale
//!   fingerprint collision is impossible by construction.
//! * Each resident entry stores a [`Weak`] to its payload. The weak count
//!   keeps the `ArcInner` allocation alive even after the last strong
//!   reference drops, so while an entry is resident no *new* allocation of
//!   that payload type can reuse its address. Variant + address equality
//!   therefore implies "the very same immutable object", and the memoized
//!   value is exact.
//!
//! The table is a 64-slot direct-mapped array behind one mutex: lookups on
//! the hit path take the lock, compare one pointer, and return — no heap
//! allocation. Misses compute the norm *outside* the lock (that pass
//! allocates and can recurse through combinators) and then publish,
//! evicting whatever previously occupied the slot. Implicit and combinator
//! variants bypass the table entirely.
//!
//! Determinism: the cache only changes *when* the column-norm pass runs,
//! never its result — `l1_sensitivity` is a pure function of the immutable
//! payload, so plans remain bit-identical with the cache hot, cold, or
//! thrashing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::{CsrMatrix, DenseMatrix, Matrix, RangeQueries, RectQueries2D};

/// Direct-mapped table size; power of two so the slot mix reduces to a
/// multiply and shift.
const SLOTS: usize = 64;

/// Typed weak handle proving the cached payload is still the one at the
/// recorded address (see the module docs for why this cannot go stale).
enum PayloadGuard {
    Vacant,
    Dense(Weak<DenseMatrix>),
    Sparse(Weak<CsrMatrix>),
    Diagonal(Weak<Vec<f64>>),
    Range(Weak<RangeQueries>),
    Rect2D(Weak<RectQueries2D>),
}

struct Entry {
    guard: PayloadGuard,
    value: f64,
}

struct Table {
    entries: [Entry; SLOTS],
    hits: u64,
    misses: u64,
}

const VACANT: Entry = Entry {
    guard: PayloadGuard::Vacant,
    value: 0.0,
};

static TABLE: Mutex<Table> = Mutex::new(Table {
    entries: [VACANT; SLOTS],
    hits: 0,
    misses: 0,
});

/// Lookups on variants without an Arc payload (counted lock-free).
static BYPASSED: AtomicU64 = AtomicU64::new(0);

fn lock_table() -> std::sync::MutexGuard<'static, Table> {
    // Entries are plain (guard, f64) pairs written in one statement, so a
    // panic can never leave a torn entry; recover from stray poisoning.
    TABLE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Slot index for a payload address: Fibonacci mix, top bits.
fn slot(addr: usize) -> usize {
    (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (usize::BITS - 6)) & (SLOTS - 1)
}

/// Payload address for the cacheable variants, `None` for the rest.
fn payload_addr(m: &Matrix) -> Option<usize> {
    match m {
        Matrix::Dense(a) => Some(Arc::as_ptr(a) as usize),
        Matrix::Sparse(a) => Some(Arc::as_ptr(a) as usize),
        Matrix::Diagonal(a) => Some(Arc::as_ptr(a) as usize),
        Matrix::Range(a) => Some(Arc::as_ptr(a) as usize),
        Matrix::Rect2D(a) => Some(Arc::as_ptr(a) as usize),
        _ => None,
    }
}

/// Whether `guard` pins exactly the payload behind `m`.
fn guard_matches(guard: &PayloadGuard, m: &Matrix) -> bool {
    match (guard, m) {
        (PayloadGuard::Dense(w), Matrix::Dense(a)) => Weak::as_ptr(w) == Arc::as_ptr(a),
        (PayloadGuard::Sparse(w), Matrix::Sparse(a)) => Weak::as_ptr(w) == Arc::as_ptr(a),
        (PayloadGuard::Diagonal(w), Matrix::Diagonal(a)) => Weak::as_ptr(w) == Arc::as_ptr(a),
        (PayloadGuard::Range(w), Matrix::Range(a)) => Weak::as_ptr(w) == Arc::as_ptr(a),
        (PayloadGuard::Rect2D(w), Matrix::Rect2D(a)) => Weak::as_ptr(w) == Arc::as_ptr(a),
        _ => false,
    }
}

/// A guard pinning `m`'s payload; only called for cacheable variants.
fn make_guard(m: &Matrix) -> PayloadGuard {
    match m {
        Matrix::Dense(a) => PayloadGuard::Dense(Arc::downgrade(a)),
        Matrix::Sparse(a) => PayloadGuard::Sparse(Arc::downgrade(a)),
        Matrix::Diagonal(a) => PayloadGuard::Diagonal(Arc::downgrade(a)),
        Matrix::Range(a) => PayloadGuard::Range(Arc::downgrade(a)),
        Matrix::Rect2D(a) => PayloadGuard::Rect2D(Arc::downgrade(a)),
        _ => PayloadGuard::Vacant,
    }
}

/// Memoized `l1_sensitivity` (see [`Matrix::l1_sensitivity_cached`]).
pub(crate) fn l1_cached(m: &Matrix) -> f64 {
    let Some(addr) = payload_addr(m) else {
        BYPASSED.fetch_add(1, Ordering::Relaxed);
        return m.l1_sensitivity();
    };
    let idx = slot(addr);
    {
        let mut t = lock_table();
        if guard_matches(&t.entries[idx].guard, m) {
            t.hits += 1;
            return t.entries[idx].value;
        }
    }
    // Miss: compute outside the lock — the column-norm pass allocates, can
    // recurse, and must not serialize unrelated lookups behind it.
    let value = m.l1_sensitivity();
    let mut t = lock_table();
    // A racing thread may have published the same object meanwhile; the
    // overwrite below is then value-identical, so no re-check is needed.
    t.entries[idx] = Entry {
        guard: make_guard(m),
        value,
    };
    t.misses += 1;
    value
}

/// Counters for the process-wide sensitivity cache (monotonic since
/// process start, except `resident` which is the current occupancy).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SensCacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that computed and published a fresh entry.
    pub misses: u64,
    /// Lookups on implicit/combinator variants that skip the table.
    pub bypassed: u64,
    /// Occupied slots right now (stale entries whose strong count dropped
    /// to zero still occupy their slot until evicted by a new miss).
    pub resident: usize,
}

/// Snapshot of the sensitivity-cache counters.
pub fn sens_cache_stats() -> SensCacheStats {
    let t = lock_table();
    let resident = t
        .entries
        .iter()
        .filter(|e| !matches!(e.guard, PayloadGuard::Vacant))
        .count();
    SensCacheStats {
        hits: t.hits,
        misses: t.misses,
        bypassed: BYPASSED.load(Ordering::Relaxed),
        resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc_variants() -> Vec<Matrix> {
        vec![
            Matrix::from_rows(vec![vec![1.0, -2.0], vec![0.5, 3.0]]),
            Matrix::sparse(Matrix::prefix(5).to_sparse()),
            Matrix::diagonal(vec![1.0, -4.0, 2.5]),
            Matrix::range_queries(6, vec![(0, 3), (2, 6)]),
            Matrix::rect_queries(3, 4, vec![(0, 2, 1, 3)]),
        ]
    }

    #[test]
    fn cached_matches_uncached_for_every_arc_variant() {
        for m in arc_variants() {
            let exact = m.l1_sensitivity();
            assert_eq!(m.l1_sensitivity_cached(), exact);
            // Second call — served from the table — is bit-identical.
            assert_eq!(m.l1_sensitivity_cached(), exact);
        }
    }

    #[test]
    fn repeat_lookups_on_one_object_hit() {
        let m = Matrix::from_rows(vec![vec![2.0, -7.0, 1.0]]);
        let _ = m.l1_sensitivity_cached(); // publish
        let before = sens_cache_stats();
        let a = m.l1_sensitivity_cached();
        let b = m.l1_sensitivity_cached();
        let after = sens_cache_stats();
        assert_eq!(a, 7.0);
        assert_eq!(b, 7.0);
        // Other tests run concurrently, so only lower-bound the delta.
        assert!(
            after.hits >= before.hits + 2,
            "expected 2 hits, stats {before:?} -> {after:?}"
        );
    }

    #[test]
    fn structural_clone_shares_the_entry() {
        let m = Matrix::diagonal(vec![3.0, -9.0]);
        let twin = m.clone(); // clones the Arc, not the payload
        let _ = m.l1_sensitivity_cached();
        let before = sens_cache_stats();
        assert_eq!(twin.l1_sensitivity_cached(), 9.0);
        assert!(sens_cache_stats().hits > before.hits);
    }

    #[test]
    fn implicit_variants_bypass_the_table() {
        let before = sens_cache_stats().bypassed;
        assert_eq!(Matrix::prefix(8).l1_sensitivity_cached(), 8.0);
        assert_eq!(Matrix::identity(4).l1_sensitivity_cached(), 1.0);
        let h = Matrix::vstack(vec![Matrix::identity(4), Matrix::total(4)]);
        assert_eq!(h.l1_sensitivity_cached(), 2.0);
        assert!(sens_cache_stats().bypassed >= before + 3);
    }

    #[test]
    fn address_reuse_cannot_serve_a_stale_value() {
        // Create-and-drop in a tight loop so the allocator is pressured to
        // reuse addresses; a stale entry would surface as a wrong norm.
        for i in 0..400 {
            let want = i as f64 + 0.5;
            let m = Matrix::diagonal(vec![want, -want / 2.0, 0.25]);
            assert_eq!(m.l1_sensitivity_cached(), want);
        }
    }

    #[test]
    fn equal_shaped_distinct_objects_do_not_alias() {
        let a = Matrix::diagonal(vec![5.0, 1.0]);
        let b = Matrix::diagonal(vec![8.0, 1.0]); // same shape, new payload
        assert_eq!(a.l1_sensitivity_cached(), 5.0);
        assert_eq!(b.l1_sensitivity_cached(), 8.0);
        assert_eq!(a.l1_sensitivity_cached(), 5.0);
    }
}
