//! Minimal, dependency-free shim of the `criterion` benchmarking API used
//! by this workspace (the build environment cannot reach crates.io).
//!
//! Two deliberate differences from upstream criterion:
//!
//! * Measurement is simple wall-clock best/mean-of-N rather than full
//!   statistical analysis — adequate for the before/after trajectory this
//!   repo tracks.
//! * On exit every bench target writes a machine-readable summary,
//!   `BENCH_<target>.json`, at the workspace root (next to `ROADMAP.md`),
//!   so successive PRs can diff performance without parsing human output.
//!
//! Set `BENCH_SAMPLE_BUDGET_MS` to bound per-benchmark wall time (default
//! 300 ms once warm).

pub use std::hint::black_box;

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id (function / parameter).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

/// Top-level benchmark driver (collects results, writes the JSON summary).
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let rec = run_bench("ungrouped", &label, 10, &mut f);
        eprintln!(
            "bench ungrouped/{label}: {:.1} ns/iter (n={})",
            rec.mean_ns, rec.iters
        );
        self.records.push(rec);
        self
    }

    /// Writes the `BENCH_<target>.json` summary. Called by
    /// [`criterion_main!`]; harmless to call twice.
    pub fn finalize(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let path = summary_path();
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"group\": {}, \"bench\": {}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}}}{}\n",
                json_str(&r.group),
                json_str(&r.id),
                r.mean_ns,
                r.min_ns,
                r.iters,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("]\n");
        match std::fs::write(&path, out) {
            Ok(()) => eprintln!("wrote benchmark summary to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        self.records.clear();
    }
}

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let rec = run_bench(&self.name, &label, self.sample_size, &mut |b| f(b, input));
        eprintln!(
            "bench {}/{label}: {:.1} ns/iter (n={})",
            self.name, rec.mean_ns, rec.iters
        );
        self.criterion.records.push(rec);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let rec = run_bench(&self.name, &label, self.sample_size, &mut f);
        eprintln!(
            "bench {}/{label}: {:.1} ns/iter (n={})",
            self.name, rec.mean_ns, rec.iters
        );
        self.criterion.records.push(rec);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion of the various accepted id types into a display label.
pub trait IntoBenchmarkLabel {
    /// The label used in reports and JSON.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    sample_size: u64,
    budget: Duration,
    timings_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, recording per-iteration wall-clock durations. Stops at
    /// the sample size or when the time budget is exhausted (whichever
    /// comes first, with a minimum of 3 timed iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.timings_ns.push(t0.elapsed().as_nanos() as f64);
            if started.elapsed() > self.budget && self.timings_ns.len() >= 3 {
                break;
            }
        }
    }
}

fn run_bench(group: &str, id: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) -> Record {
    let budget_ms: u64 = std::env::var("BENCH_SAMPLE_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let mut bencher = Bencher {
        sample_size,
        budget: Duration::from_millis(budget_ms),
        timings_ns: Vec::new(),
    };
    f(&mut bencher);
    let n = bencher.timings_ns.len().max(1) as f64;
    let mean = bencher.timings_ns.iter().sum::<f64>() / n;
    let min = bencher
        .timings_ns
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    Record {
        group: group.to_string(),
        id: id.to_string(),
        mean_ns: mean,
        min_ns: if min.is_finite() { min } else { 0.0 },
        iters: bencher.timings_ns.len() as u64,
    }
}

fn json_str(s: &str) -> String {
    let escaped: String = s
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect();
    format!("\"{escaped}\"")
}

/// `BENCH_<target>.json` at the workspace root (found by walking up from
/// the current directory to the first ancestor containing `ROADMAP.md` or
/// `.git`; falls back to the current directory).
fn summary_path() -> PathBuf {
    let target = std::env::args()
        .next()
        .map(|argv0| {
            let stem = std::path::Path::new(&argv0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "bench".to_string());
            // Cargo appends a -<hash> disambiguator to bench executables.
            match stem.rsplit_once('-') {
                Some((base, hash))
                    if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
                {
                    base.to_string()
                }
                _ => stem,
            }
        })
        .unwrap_or_else(|| "bench".to_string());
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("ROADMAP.md").exists() || dir.join(".git").exists() {
            break;
        }
        if !dir.pop() {
            dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            break;
        }
    }
    dir.join(format!("BENCH_{target}.json"))
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the given group functions and writing the
/// JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}
