//! The strategy algebra: value generation plus the combinators this
//! workspace uses (`prop_map`, `prop_recursive`, unions, boxing).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::test_runner::TestRunner;

/// A generated value holder (shrinking is not implemented in this shim, so
/// a tree is just its current value).
pub trait ValueTree {
    /// The value type.
    type Value;

    /// The value this tree currently represents.
    fn current(&self) -> Self::Value;
}

/// Trivial [`ValueTree`] wrapping one generated value.
pub struct ShimTree<V: Clone>(V);

impl<V: Clone> ValueTree for ShimTree<V> {
    type Value = V;

    fn current(&self) -> V {
        self.0.clone()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Generates one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Generates a value tree (shim: a single value, never fails).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<ShimTree<Self::Value>, String>
    where
        Self: Sized,
    {
        Ok(ShimTree(self.gen_value(runner.rng())))
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `recurse` receives a strategy for smaller
    /// instances (including `self` as the base case) and returns one for
    /// larger instances; applied `depth` times. `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut StdRng) -> V {
        self.0.gen_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among several boxed strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + Debug> Union<V> {
    /// A union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V: Clone + Debug + 'static> Strategy for Union<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
