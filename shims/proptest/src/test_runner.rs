//! Test-runner state: configuration and the deterministic generator that
//! drives strategies.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs, plus room for future knobs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives strategy generation for one property.
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// A runner with the given config and a fixed seed (runs are always
    /// reproducible in this shim).
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(0xEC7E10),
        }
    }

    /// A deterministic default-config runner.
    pub fn deterministic() -> Self {
        TestRunner::new(ProptestConfig::default())
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The generator strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
