//! Minimal, dependency-free shim of the `proptest` API surface used by this
//! workspace (the build environment cannot reach crates.io).
//!
//! Semantics: strategies generate random values from a deterministic
//! generator; the [`proptest!`] macro runs each property for
//! `ProptestConfig::cases` generated inputs and panics on the first
//! failure, reporting the failing assertion. Shrinking is not implemented —
//! failures report the assertion message rather than a minimal
//! counterexample — but generation covers the same value space, so the
//! properties exercised are identical.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!("assertion failed: `{:?} != {:?}`", l, r));
        }
    }};
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines `#[test]` functions that run a body over generated inputs:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, v in prop::collection::vec(-1.0f64..1.0, 5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                for case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::gen_value(
                        &$strat, runner.rng());)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest case {} failed: {}", case, msg);
                    }
                }
            }
        )*
    };
}
