//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Length specification accepted by [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` strategy with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
