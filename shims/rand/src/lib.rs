//! Minimal, dependency-free shim of the `rand` 0.9 API surface used by this
//! workspace. The build environment has no network access to crates.io, so
//! the workspace vendors exactly what it needs: a seedable deterministic
//! generator ([`rngs::StdRng`]), the [`RngExt`] convenience methods
//! (`random`, `random_range`, `random_bool`) and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation/testing purposes, and fully deterministic for a
//! given seed (which is all the EKTELO test-and-bench harness relies on).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-bits source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64() as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The convenience sampling methods of rand 0.9's `Rng` trait.
pub trait RngExt: RngCore {
    /// A value from the type's standard distribution (`[0,1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.unit_f64() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and element choice for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
