//! Minimal offline shim of the `parking_lot` API surface used by this
//! workspace: a [`Mutex`] whose `lock()` returns the guard directly.
//! Backed by `std::sync::Mutex`; a poisoned lock (a panic while held)
//! propagates the poison panic, matching the fail-fast intent.

use std::sync::MutexGuard;

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}
